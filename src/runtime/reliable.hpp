// Reliability policy for the RPC path (DESIGN.md §15).
//
// The defaults are the legacy at-most-once semantics: one attempt, no
// deadline, no dedup, no breaker — every knob here is opt-in, so existing
// experiments (and their wire traffic) are untouched until a caller or a
// `.cfg` policy file turns something on.
#pragma once

#include <cstdint>
#include <string>

#include "obs/metrics.hpp"

namespace rafda::runtime {

struct RetryPolicy {
    /// Total attempts per logical call; 1 = legacy fail-on-first-loss.
    std::uint32_t attempts = 1;
    /// Delay before retry k (k >= 1) is base * multiplier^(k-1), clamped
    /// to `backoff_cap_us`, plus a jitter draw in [0, jitter_us] from a
    /// dedicated seeded stream (deterministic across replays).
    std::uint64_t backoff_base_us = 200;
    double backoff_multiplier = 2.0;
    std::uint64_t backoff_cap_us = 20'000;
    std::uint64_t jitter_us = 0;
    /// System-wide retry budget: total retries allowed across all calls
    /// (0 = unlimited).  A budget stops retry storms from amplifying an
    /// outage: once spent, failures surface immediately.
    std::uint64_t retry_budget = 0;
    /// Per-call deadline in virtual µs, measured from the first attempt
    /// (0 = none).  Carried on the wire as an absolute time so the callee
    /// can refuse to execute an already-expired request.
    std::uint64_t deadline_us = 0;
    /// Exactly-once upgrade: each node keeps a bounded request-id → reply
    /// cache, so a retry of an already-executed call replays the reply
    /// instead of re-executing (this is what makes reply-loss retries
    /// safe — see the §12 instance-leak discussion).
    bool dedup = false;
    std::size_t dedup_capacity = 1024;
    /// Circuit breaker, per (destination node, protocol): after
    /// `breaker_threshold` consecutive transport failures the breaker
    /// opens and calls fail fast (no wire traffic) until
    /// `breaker_cooldown_us` of virtual time has passed, when one
    /// half-open probe is allowed through.  0 = disabled.
    std::uint32_t breaker_threshold = 0;
    std::uint64_t breaker_cooldown_us = 10'000;
};

/// Per-link call batching for the RPC path (DESIGN.md §17).  Off by
/// default: with it off the wire schedule — and every E5/E8 byte — is
/// exactly the per-frame behaviour.  With it on, a request finding its
/// directed link still occupied by an earlier request frame of the same
/// protocol is appended to that frame as a compact continuation entry
/// (protocols without batch framing keep per-call frames and only share
/// the pooled buffers).  Batching changes *when* bytes travel, never
/// what executes: retries, dedup and deadlines see identical semantics
/// per logical call.
struct BatchPolicy {
    bool enabled = false;
    /// Calls per frame ceiling, opener included; a full frame forces the
    /// next call to open (and queue behind) a fresh frame.
    std::uint32_t max_frame_calls = 32;
};

/// Closed/open/half-open breaker state for one (node, protocol) edge.
/// State is mirrored into a registry gauge so `rafdac faults` and tests
/// can observe transitions without poking at internals.
struct CircuitBreaker {
    enum class State : std::int64_t { Closed = 0, Open = 1, HalfOpen = 2 };

    State state = State::Closed;
    std::uint32_t consecutive_failures = 0;
    std::uint64_t opened_at_us = 0;
    obs::Gauge* state_gauge = nullptr;

    void set_state(State s) {
        state = s;
        if (state_gauge) state_gauge->set(static_cast<std::int64_t>(s));
    }

    /// A reply came back (fault replies count too: the transport works).
    void record_success() {
        consecutive_failures = 0;
        if (state != State::Closed) set_state(State::Closed);
    }

    /// A transport-level failure (drop, down link, crashed node).
    /// Returns true when this failure opened (or re-opened) the breaker.
    bool record_failure(std::uint32_t threshold, std::uint64_t now_us) {
        ++consecutive_failures;
        if (state == State::HalfOpen ||
            (state == State::Closed && consecutive_failures >= threshold)) {
            opened_at_us = now_us;
            set_state(State::Open);
            return true;
        }
        return false;
    }
};

const char* breaker_state_name(CircuitBreaker::State s);

}  // namespace rafda::runtime
