// GreedyAdapter — a minimal dynamic-reconfiguration controller.
//
// The paper's next stage is "a complete mechanism for dynamic distribution
// reconfiguration" (Sec 4).  This is a deliberately simple instance of
// such a mechanism: the application (or harness) reports the cost of each
// workload phase, and the adapter migrates a watched object towards a
// declared affinity target whenever the phase cost regresses.  It knows
// nothing about the application beyond the object it manages — all the
// leverage comes from migration being transparent to reference holders.
#pragma once

#include <string>

#include "runtime/system.hpp"

namespace rafda::runtime {

class GreedyAdapter {
public:
    /// Manages the object at (node, oid) in `system`; migrations use
    /// `protocol` (empty = policy default).
    GreedyAdapter(System& system, net::NodeId node, vm::ObjId oid,
                  std::string protocol = "");

    /// Where the managed object currently lives.
    net::NodeId current_node() const noexcept { return node_; }
    vm::ObjId current_oid() const noexcept { return oid_; }

    /// Declares where the object would ideally live right now (e.g. next
    /// to a data source).  The adapter only acts on report_phase_cost.
    void set_affinity(net::NodeId node) { affinity_ = node; }
    net::NodeId affinity() const noexcept { return affinity_; }

    /// Reports the cost of the phase that just completed (any monotone
    /// unit: virtual µs, message count, ...).  Migrates towards the
    /// affinity target when the cost failed to improve on the previous
    /// phase; returns true if it moved.
    bool report_phase_cost(std::uint64_t cost);

    std::uint64_t migrations() const noexcept { return migrations_; }

private:
    System* system_;
    net::NodeId node_;
    vm::ObjId oid_;
    std::string protocol_;
    net::NodeId affinity_;
    std::uint64_t prev_cost_ = 0;
    bool has_prev_ = false;
    std::uint64_t migrations_ = 0;
};

}  // namespace rafda::runtime
