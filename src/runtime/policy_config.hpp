// Textual distribution-policy configuration.
//
// The paper closes with: "In the longer term it is hoped to develop a
// complete system for deciding and capturing distribution policy."  This
// is the capturing half: deployments are described in a small declarative
// language instead of code, so the same transformed program can ship with
// different distribution descriptions.
//
//   # comments and blank lines are ignored
//   protocol default CORBA
//   instance Inventory on 1 via SOAP     # 'via PROTO' optional
//   singleton Registry on 0
//   link 0 -> 1 latency 250 bandwidth 125 drop 0.01   # optional tuning
//   link 1 -> 0 latency 250
//
// Reliability (DESIGN.md §15; all times/durations are virtual µs):
//
//   retry attempts 8 base 200 multiplier 2 cap 20000 jitter 50 budget 0 deadline 0
//   dedup on capacity 1024
//   breaker threshold 5 cooldown 10000
//   batch on max 32                      # per-link call batching (§17)
//   adapt on interval 2000 migrate-threshold 256 replicate-ratio 0.9  # §19
//   durable on snapshot-interval 10000   # per-node WAL + snapshots (§20)
//   fault link 0 -> 1 down from 5000 until 9000
//   fault link 0 -> 1 flap from 5000 until 9000 period 500
//   fault link 0 -> 1 drop 0.25 from 5000 until 9000
//   fault node 1 crash from 5000 until 9000
#pragma once

#include <string_view>

#include "net/network.hpp"
#include "runtime/adapt.hpp"
#include "runtime/policy.hpp"
#include "runtime/reliable.hpp"
#include "runtime/wal.hpp"

namespace rafda::runtime {

/// Parses `text` and applies it to `policy` (and, for `link`/`fault`
/// lines, to `network`; for `retry`/`dedup`/`breaker` lines, to
/// `reliability`; for `batch` lines, to `batching`; for `adapt` lines,
/// to `adaptation`; for `durable` lines, to `durability` — each when
/// given).  Throws ParseError with a line number on malformed input,
/// including unknown protocols.
void apply_policy_config(std::string_view text, DistributionPolicy& policy,
                         net::SimNetwork* network = nullptr,
                         RetryPolicy* reliability = nullptr,
                         BatchPolicy* batching = nullptr,
                         AdaptPolicy* adaptation = nullptr,
                         DurabilityPolicy* durability = nullptr);

}  // namespace rafda::runtime
