// Textual distribution-policy configuration.
//
// The paper closes with: "In the longer term it is hoped to develop a
// complete system for deciding and capturing distribution policy."  This
// is the capturing half: deployments are described in a small declarative
// language instead of code, so the same transformed program can ship with
// different distribution descriptions.
//
//   # comments and blank lines are ignored
//   protocol default CORBA
//   instance Inventory on 1 via SOAP     # 'via PROTO' optional
//   singleton Registry on 0
//   link 0 -> 1 latency 250 bandwidth 125 drop 0.01   # optional tuning
//   link 1 -> 0 latency 250
#pragma once

#include <string_view>

#include "net/network.hpp"
#include "runtime/policy.hpp"

namespace rafda::runtime {

/// Parses `text` and applies it to `policy` (and, for `link` lines, to
/// `network` when given).  Throws ParseError with a line number on
/// malformed input, including unknown protocols.
void apply_policy_config(std::string_view text, DistributionPolicy& policy,
                         net::SimNetwork* network = nullptr);

}  // namespace rafda::runtime
