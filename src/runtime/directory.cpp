#include "runtime/directory.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace rafda::runtime {
namespace {

std::uint64_t fnv1a(const char* data, std::size_t len,
                    std::uint64_t h = 1469598103934665603ULL) noexcept {
    for (std::size_t i = 0; i < len; ++i) {
        h ^= static_cast<unsigned char>(data[i]);
        h *= 1099511628211ULL;
    }
    return h;
}

// FNV-1a's avalanche is weak in the high-order bits for short inputs, and
// ring placement compares full 64-bit values (high bits first) — without a
// finalizer the ring points cluster and a handful of shards own nearly
// every key.  Murmur3's fmix64 spreads them.
std::uint64_t fmix64(std::uint64_t h) noexcept {
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    h *= 0xc4ceb9fe1a85ec53ULL;
    h ^= h >> 33;
    return h;
}

}  // namespace

std::uint64_t ShardedDirectory::hash_key(const std::string& key) noexcept {
    return fmix64(fnv1a(key.data(), key.size()));
}

void ShardedDirectory::configure(std::vector<net::NodeId> owners,
                                 const DirectoryPolicy& policy) {
    policy_ = policy;
    owners_ = std::move(owners);
    ring_.clear();
    tables_.clear();
    caches_.clear();
    if (owners_.empty()) return;
    std::sort(owners_.begin(), owners_.end());
    owners_.erase(std::unique(owners_.begin(), owners_.end()), owners_.end());
    const std::uint32_t vnodes = policy_.vnodes == 0 ? 1 : policy_.vnodes;
    ring_.reserve(owners_.size() * vnodes);
    for (net::NodeId owner : owners_) {
        // Ring points hash (owner, replica) so the layout depends only on
        // the owner set — never on insertion order or host pointers.
        std::uint64_t h = fnv1a(reinterpret_cast<const char*>(&owner), sizeof(owner));
        for (std::uint32_t r = 0; r < vnodes; ++r) {
            std::uint64_t point =
                fmix64(fnv1a(reinterpret_cast<const char*>(&r), sizeof(r), h));
            ring_.emplace_back(point, owner);
        }
        tables_[owner];  // materialize the shard table, even if it stays empty
    }
    std::sort(ring_.begin(), ring_.end());
}

net::NodeId ShardedDirectory::owner(const std::string& key) const {
    if (ring_.empty()) throw RuntimeError("ShardedDirectory::owner: directory disabled");
    const std::uint64_t h = hash_key(key);
    auto it = std::lower_bound(
        ring_.begin(), ring_.end(), std::make_pair(h, net::NodeId{0}),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    if (it == ring_.end()) it = ring_.begin();  // wrap clockwise past the top
    return it->second;
}

std::map<std::string, DirLocation>& ShardedDirectory::table_for(const std::string& key) {
    return tables_[owner(key)];
}

void ShardedDirectory::put_singleton(const std::string& cls, net::NodeId home,
                                     const std::string& protocol) {
    DirLocation loc;
    loc.node = home;
    loc.protocol = protocol;
    table_for("S/" + cls)["S/" + cls] = std::move(loc);
}

const DirLocation* ShardedDirectory::find_singleton(const std::string& cls) const {
    const std::string key = "S/" + cls;
    auto shard = tables_.find(owner(key));
    if (shard == tables_.end()) return nullptr;
    auto it = shard->second.find(key);
    return it == shard->second.end() ? nullptr : &it->second;
}

namespace {
std::string object_key(net::NodeId node, std::uint64_t oid) {
    return "O/" + std::to_string(node) + "/" + std::to_string(oid);
}
}  // namespace

void ShardedDirectory::put_object(net::NodeId node, std::uint64_t oid,
                                  net::NodeId to, std::uint64_t new_oid) {
    DirLocation loc;
    loc.node = to;
    loc.oid = new_oid;
    table_for(object_key(node, oid))[object_key(node, oid)] = std::move(loc);
}

std::pair<net::NodeId, std::uint64_t> ShardedDirectory::chase_object(
    net::NodeId node, std::uint64_t oid) const {
    // Bounded chase: each recorded hop is one past migration, and migrations
    // are finite; the bound guards against a (buggy) relocation cycle.
    for (int hops = 0; hops < 64; ++hops) {
        const std::string key = object_key(node, oid);
        auto shard = tables_.find(owner(key));
        if (shard == tables_.end()) return {node, oid};
        auto it = shard->second.find(key);
        if (it == shard->second.end()) return {node, oid};
        node = it->second.node;
        oid = it->second.oid;
    }
    return {node, oid};
}

void ShardedDirectory::visit_shards(
    const std::function<void(net::NodeId, std::size_t)>& fn) const {
    for (const auto& [owner, table] : tables_) fn(owner, table.size());
}

std::size_t ShardedDirectory::total_entries() const noexcept {
    std::size_t n = 0;
    for (const auto& [owner, table] : tables_) n += table.size();
    return n;
}

const DirLocation* ShardedDirectory::cached_singleton(net::NodeId asker,
                                                      const std::string& cls) const {
    if (!policy_.cache) return nullptr;
    auto node_cache = caches_.find(asker);
    if (node_cache == caches_.end()) return nullptr;
    auto it = node_cache->second.find("S/" + cls);
    return it == node_cache->second.end() ? nullptr : &it->second;
}

void ShardedDirectory::cache_singleton(net::NodeId asker, const std::string& cls,
                                       const DirLocation& loc) {
    if (!policy_.cache) return;
    caches_[asker]["S/" + cls] = loc;
}

void ShardedDirectory::invalidate_caches() { caches_.clear(); }

}  // namespace rafda::runtime
