#include "runtime/policy.hpp"

namespace rafda::runtime {

void DistributionPolicy::set_default_protocol(std::string protocol) {
    default_protocol_ = std::move(protocol);
}

void DistributionPolicy::set_instance_home(const std::string& cls, net::NodeId node,
                                           std::string protocol) {
    instance_homes_[cls] = Home{node, std::move(protocol)};
}

void DistributionPolicy::clear_instance_home(const std::string& cls) {
    instance_homes_.erase(cls);
}

void DistributionPolicy::set_singleton_home(const std::string& cls, net::NodeId node,
                                            std::string protocol) {
    singleton_homes_[cls] = Home{node, std::move(protocol)};
}

void DistributionPolicy::clear_singleton_home(const std::string& cls) {
    singleton_homes_.erase(cls);
}

Placement DistributionPolicy::instance_placement(const std::string& cls,
                                                 net::NodeId creating_node) const {
    auto it = instance_homes_.find(cls);
    if (it == instance_homes_.end()) return Placement{creating_node, default_protocol_};
    return Placement{it->second.node, resolved(it->second.protocol)};
}

Placement DistributionPolicy::singleton_placement(const std::string& cls,
                                                  net::NodeId) const {
    auto it = singleton_homes_.find(cls);
    if (it == singleton_homes_.end()) return Placement{0, default_protocol_};
    return Placement{it->second.node, resolved(it->second.protocol)};
}

}  // namespace rafda::runtime
