#include "runtime/sched.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace rafda::runtime {

std::uint32_t EventHeap::register_handler(Handler fn) {
    handlers_.push_back(std::move(fn));
    return static_cast<std::uint32_t>(handlers_.size() - 1);
}

std::uint64_t EventHeap::post(std::uint64_t at_us, std::int32_t node,
                              std::uint32_t kind, std::uint64_t a, std::uint64_t b) {
    Event e;
    e.at_us = at_us;
    e.seq = next_seq_++;
    e.node = node;
    e.kind = kind;
    e.a = a;
    e.b = b;
    heap_.push_back(e);
    std::push_heap(heap_.begin(), heap_.end(), later);
    ++posted_;
    if (heap_.size() > peak_pending_) peak_pending_ = heap_.size();
    return e.seq;
}

void EventHeap::fold_digest(const Event& e) noexcept {
    auto mix = [this](std::uint64_t v) {
        for (int k = 0; k < 8; ++k) {
            digest_ ^= (v >> (8 * k)) & 0xff;
            digest_ *= 1099511628211ULL;  // FNV-1a prime
        }
    };
    mix(e.at_us);
    mix(e.seq);
    mix(e.kind);
}

Event EventHeap::pop() {
    if (heap_.empty()) throw RuntimeError("EventHeap::pop on an empty heap");
    std::pop_heap(heap_.begin(), heap_.end(), later);
    Event e = heap_.back();
    heap_.pop_back();
    ++dispatched_;
    last_at_ = e.at_us;
    fold_digest(e);
    return e;
}

void EventHeap::dispatch(const Event& e) {
    if (e.kind >= handlers_.size())
        throw RuntimeError("EventHeap: event with unregistered kind " +
                           std::to_string(e.kind));
    handlers_[e.kind](e);
}

void EventHeap::run() {
    while (!heap_.empty()) dispatch(pop());
}

}  // namespace rafda::runtime
