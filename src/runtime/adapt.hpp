// AdaptationEngine — the closed loop between observation and placement
// (DESIGN.md §19; ROADMAP item 1).
//
// The RAFDA follow-on papers make the middleware *adaptive*: placement is
// not a config-time decision but a control loop over runtime measurement.
// This engine is that loop.  A periodic controller tick — scheduled by the
// WorkloadDriver as an ordinary EventHeap event, so it is deterministic
// from the seed and fairness-mode agnostic — samples windowed deltas of
// the per-(class, src, dst) traffic matrix, the per-method latency
// histograms and the per-link byte counters, then for every observed
// class either:
//
//   * replicates — the window is read-mostly (read/write ratio >=
//     `replicate_ratio`, classified against the original bytecode) and
//     the home saw no unobservable local access: every remote reader gets
//     a node-local copy behind the ReplicaManager, write-invalidate
//     consistency (DESIGN.md §19);
//   * migrates — some caller node's projected score beats the home by at
//     least `migrate_threshold_bytes`: the object (singleton or tracked
//     instance) moves toward its traffic via the existing migration
//     machinery, directory updates included;
//   * defers — the chosen destination is inside a FaultPlan crash window
//     at decision time: the decision is recorded and retried at the next
//     tick instead of paying the reliable-channel stall against a dead
//     node.
//
// The score of placing a class at node n over one window is
//
//     score(n) = (window_bytes_total - window_bytes_from(n))
//              + queue_weight * hottest_inbound_link_bytes(n)
//
// i.e. the wire bytes the class would still cause if it lived on n, plus
// a congestion penalty for aiming the class's traffic at an already-hot
// node.  Every input is a windowed delta of deterministic counters, every
// container iterates in sorted order, and the engine never reads a PRNG —
// so two runs from one seed take identical decisions (asserted by E14).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "net/network.hpp"
#include "obs/metrics.hpp"

namespace rafda::runtime {

class System;

/// Knobs for the controller; `System::enable_adaptation` applies them and
/// the policy grammar exposes them as
/// `adapt on [interval N] [migrate-threshold B] [replicate-ratio R]`.
struct AdaptPolicy {
    bool enabled = false;
    /// Virtual µs between controller ticks.
    std::uint64_t interval_us = 2000;
    /// Minimum projected per-window byte saving before a migration is
    /// worth its barrier.
    std::uint64_t migrate_threshold_bytes = 256;
    /// Window read share (reads / (reads + writes)) at or above which a
    /// class is replicated to its readers instead of migrated.
    double replicate_ratio = 0.9;
    /// Windows with fewer observed calls than this are noise: no decision.
    std::uint64_t min_window_calls = 8;
    /// Weight of the hottest-inbound-link congestion term in the score.
    double queue_weight = 1.0;
};

/// One controller decision, kept for `rafdac adapt` and the benches.
struct AdaptDecision {
    /// Explicit values: the journal's Adapt events encode the action in
    /// `a` with 3/4 reserved for invalidate/refresh, so Recover is 5.
    enum class Action : std::uint8_t {
        Migrate = 0,
        Replicate = 1,
        Defer = 2,
        /// Home node was inside a crash window: migration-by-recovery
        /// rebuilt its durable image on the chosen destination instead of
        /// deferring (DESIGN.md §20; requires `durable on`).
        Recover = 5,
    };

    std::uint64_t seq = 0;   // decision order, 1-based
    std::uint64_t t_us = 0;  // watermark at the tick that decided
    std::string cls;
    Action action = Action::Migrate;
    net::NodeId from = 0;
    net::NodeId to = 0;
    std::uint64_t window_calls = 0;
    std::uint64_t window_bytes = 0;
    /// score(from) - score(to) at decision time.
    std::uint64_t projected_saved_bytes = 0;
    /// Window-over-window change in the class's wire bytes, backfilled at
    /// the next tick (negative = traffic grew anyway).
    std::int64_t realized_saved_bytes = 0;
    bool realized_known = false;
};

/// "migrate" / "replicate" / "defer" / "recover".
const char* adapt_action_name(AdaptDecision::Action a);

class AdaptationEngine {
public:
    AdaptationEngine(System& system, AdaptPolicy policy);

    const AdaptPolicy& policy() const noexcept { return policy_; }

    /// One controller tick at watermark `now_us`.  Gated on the interval
    /// (`now_us >= next_due`) unless `force`; returns true when the tick
    /// ran.  Safe to call from any scheduler — the gate makes calling
    /// cadence irrelevant to behaviour.
    bool tick(std::uint64_t now_us, bool force = false);

    /// Closes the observation loop without acting: backfills realized
    /// savings for decisions still pending.  The driver calls this once
    /// after the workload drains so the last window's decisions report
    /// their outcome.
    void finalize();

    std::uint64_t next_due_us() const noexcept { return next_due_; }
    std::uint64_t ticks_run() const noexcept { return ticks_; }
    const std::vector<AdaptDecision>& decisions() const noexcept {
        return decisions_;
    }

    /// Explicitly registers an instance for the controller (tests; the
    /// autonomous path finds singletons by itself).  The engine keeps the
    /// tracking entry current across its own migrations.
    void track_instance(const std::string& cls, net::NodeId node,
                        std::uint64_t oid);

private:
    struct Edge {
        std::uint64_t calls = 0;
        std::uint64_t bytes = 0;
    };
    using EdgeMap = std::map<std::pair<net::NodeId, net::NodeId>, Edge>;

    /// Per-class window: traffic deltas plus the read/write split from the
    /// per-method latency-histogram count deltas.
    struct ClassWindow {
        EdgeMap edges;
        std::uint64_t calls = 0;
        std::uint64_t bytes = 0;
        std::uint64_t reads = 0;
        std::uint64_t writes = 0;
        std::uint64_t local_discovers = 0;
    };

    void sample_windows(std::map<std::string, ClassWindow>& out,
                        std::map<std::pair<net::NodeId, net::NodeId>,
                                 std::uint64_t>& link_bytes);
    void backfill_realized(const std::map<std::string, ClassWindow>& windows);
    /// Resolves the class's current primary: tracked instance first, then
    /// the instantiated singleton.  Returns false when the class has no
    /// movable object.
    bool primary_of(const std::string& cls, net::NodeId& node,
                    std::uint64_t& oid, bool& is_singleton) const;
    void decide_class(const std::string& cls, const ClassWindow& w,
                      const std::map<std::pair<net::NodeId, net::NodeId>,
                                     std::uint64_t>& link_bytes,
                      std::uint64_t now_us);
    AdaptDecision& record(AdaptDecision d);

    System* system_;
    AdaptPolicy policy_;
    std::uint64_t next_due_ = 0;
    std::uint64_t ticks_ = 0;
    std::vector<AdaptDecision> decisions_;
    std::vector<std::size_t> pending_;  // indices awaiting realized backfill

    /// Previous cumulative readings (the windowed-delta baselines).
    std::map<std::string, std::map<std::pair<net::NodeId, net::NodeId>,
                                   std::pair<std::uint64_t, std::uint64_t>>>
        prev_class_;
    std::map<std::pair<net::NodeId, net::NodeId>, std::uint64_t> prev_link_bytes_;
    std::map<std::string, std::uint64_t> prev_hist_counts_;
    std::map<std::string, std::uint64_t> prev_local_discovers_;

    /// Registry handles (resolved once at construction).
    obs::Counter* decisions_ctr_ = nullptr;
    obs::Counter* migrations_ctr_ = nullptr;
    obs::Counter* replications_ctr_ = nullptr;
    obs::Counter* bytes_saved_ctr_ = nullptr;

    /// Classes whose replica creation failed (e.g. unmarshalable state):
    /// never retried.
    std::set<std::string> no_replicate_;
    /// Explicitly tracked instances: cls -> (node, oid).
    std::map<std::string, std::pair<net::NodeId, std::uint64_t>> tracked_;
};

}  // namespace rafda::runtime
