#include "runtime/system.hpp"

#include <cmath>
#include <set>

#include "model/assembler.hpp"
#include "model/verifier.hpp"
#include "support/error.hpp"
#include "support/log.hpp"
#include "transform/naming.hpp"
#include "vm/prelude.hpp"

namespace rafda::runtime {

namespace naming = transform::naming;
using vm::Value;

namespace {

constexpr const char* kRemoteFaultRir = R"(
special class RemoteFault extends Throwable {
  ctor (S)V {
    load 0
    load 1
    invokespecial Throwable.<init> (S)V
    return
  }
}
)";

model::ClassPool prepare_pool(const model::ClassPool& original) {
    model::ClassPool prepared;
    for (const model::ClassFile* cf : original.all()) prepared.add(*cf);
    vm::install_prelude(prepared);
    if (!prepared.contains(kRemoteFaultClass))
        model::assemble_into(prepared, kRemoteFaultRir);
    return prepared;
}

}  // namespace

System::System(const model::ClassPool& original, SystemOptions options)
    : original_(&original),
      prepared_(prepare_pool(original)),
      // metrics_ is declared before result_, so the pipeline can record
      // its phase timings (transform.*) into the system registry.
      result_(transform::run_pipeline(
          prepared_, [&] {
              transform::PipelineOptions po = options.pipeline;
              if (!po.metrics) po.metrics = &metrics_;
              return po;
          }())),
      network_(options.network_seed),
      reliability_(options.reliability),
      batching_(options.batching),
      class_matrix_cap_(options.class_matrix_cap),
      retry_jitter_rng_(Rng::mix(options.network_seed, 0x6a697474ULL)) {
    network_.set_default_link(options.default_link);
    network_.attach_metrics(&metrics_);
    network_.attach_journal(&journal_);
    tracer_.set_clock([this] { return network_.now_us(); });
    set_log_time_source(
        [this] { return static_cast<std::int64_t>(network_.now_us()); }, this);
    migrations_counter_ = &metrics_.counter("runtime.migrations");
    migration_bytes_counter_ = &metrics_.counter("runtime.migration_bytes");
    chain_shortenings_counter_ = &metrics_.counter("runtime.chain_shortenings");
    chain_hops_removed_counter_ = &metrics_.counter("runtime.chain_hops_removed");
    rpc_retries_ = &metrics_.counter("rpc.retries");
    rpc_retries_reply_loss_ = &metrics_.counter("rpc.retries_reply_loss");
    rpc_timeouts_ = &metrics_.counter("rpc.timeouts");
    rpc_dedup_hits_ = &metrics_.counter("rpc.dedup_hits");
    rpc_breaker_open_ = &metrics_.counter("rpc.breaker_open");
    batch_frames_ = &metrics_.counter("rpc.batch.frames");
    batch_coalesced_ = &metrics_.counter("rpc.batch.coalesced");
    batch_entry_bytes_ = &metrics_.counter("rpc.batch.entry_bytes");
    batch_latency_saved_us_ = &metrics_.counter("rpc.batch.latency_saved_us");
    // Pool traffic is sampled live at snapshot time (cumulative over the
    // process, unaffected by reset_stats — zero hot-path cost).
    metrics_.register_probe("rpc.pool.acquires", [this] {
        return static_cast<std::int64_t>(buffer_pool_.acquires());
    });
    metrics_.register_probe("rpc.pool.reuses", [this] {
        return static_cast<std::int64_t>(buffer_pool_.reuses());
    });
    metrics_.register_probe("rpc.pool.retained", [this] {
        return static_cast<std::int64_t>(buffer_pool_.retained());
    });
    for (const std::string& proto : result_.report.protocols())
        codecs_[proto] = net::make_codec(proto);
    // The read/write classifier judges ORIGINAL bytecode — the
    // pre-transformation truth about what each method touches.
    replicas_.configure(original_);
    durability_ = options.durability;
    // Restart observation flows through one seam: any notify_restarts call
    // (RPC arrival, driver sweep) lands on the node's apply_restarts,
    // which decides soft-state shedding vs WAL recovery (DESIGN.md §20).
    network_.fault_plan().set_restart_callback(
        [this](net::NodeId n, std::uint64_t restarts, std::uint64_t) {
            if (n >= 0 && static_cast<std::size_t>(n) < nodes_.size())
                nodes_[static_cast<std::size_t>(n)]->apply_restarts(restarts);
        });
    if (durability_.enabled) enable_durability(durability_);
}

System::~System() { clear_log_time_source(this); }

System::ProtoMetrics& System::proto_metrics(const std::string& protocol) {
    auto it = proto_metrics_.find(protocol);
    if (it == proto_metrics_.end()) {
        const std::string prefix = "rpc.proto." + protocol + ".";
        ProtoMetrics m;
        m.calls = &metrics_.counter(prefix + "calls");
        m.creates = &metrics_.counter(prefix + "creates");
        m.discovers = &metrics_.counter(prefix + "discovers");
        m.faults = &metrics_.counter(prefix + "faults");
        m.drops = &metrics_.counter(prefix + "drops");
        m.request_bytes = &metrics_.counter(prefix + "request_bytes");
        m.reply_bytes = &metrics_.counter(prefix + "reply_bytes");
        m.request_size = &metrics_.histogram(prefix + "request_size");
        m.reply_size = &metrics_.histogram(prefix + "reply_size");
        it = proto_metrics_.emplace(protocol, m).first;
    }
    return it->second;
}

void System::enable_method_profiling(bool on) {
    method_profiling_ = on;
    for (const auto& n : nodes_) n->interp().set_method_profiling(on);
}

net::Codec& System::codec(const std::string& protocol) {
    auto it = codecs_.find(protocol);
    if (it == codecs_.end()) throw RuntimeError("no codec for protocol " + protocol);
    return *it->second;
}

Node& System::node(net::NodeId id) {
    if (id < 0 || static_cast<std::size_t>(id) >= nodes_.size())
        throw RuntimeError("unknown node " + std::to_string(id));
    return *nodes_[static_cast<std::size_t>(id)];
}

Node& System::add_node() {
    auto owned = std::make_unique<Node>(*this, static_cast<net::NodeId>(nodes_.size()),
                                        result_.pool);
    Node& node = *owned;
    nodes_.push_back(std::move(owned));
    node.interp().attach_metrics(&metrics_, "vm.node" + std::to_string(node.id()));
    node.interp().set_method_profiling(method_profiling_);
    node.clock_gauge_ =
        &metrics_.gauge("runtime.node" + std::to_string(node.id()) + ".clock_us");
    wire_node(node);
    if (durability_.enabled) {
        node.enable_durability(durability_);
        node.wal()->attach_counters(wal_records_, wal_bytes_, wal_snapshots_);
    }
    return node;
}

void System::enable_durability(DurabilityPolicy policy) {
    policy.enabled = true;
    durability_ = policy;
    if (!wal_records_) {
        wal_records_ = &metrics_.counter("wal.records");
        wal_bytes_ = &metrics_.counter("wal.bytes");
        wal_snapshots_ = &metrics_.counter("wal.snapshots");
        wal_recoveries_ = &metrics_.counter("wal.recoveries");
        wal_replayed_ = &metrics_.counter("wal.replayed_records");
        wal_relocated_ = &metrics_.counter("wal.relocated_objects");
    }
    for (const auto& n : nodes_) {
        n->enable_durability(durability_);
        n->wal()->attach_counters(wal_records_, wal_bytes_, wal_snapshots_);
    }
}

void System::observe_restarts() {
    if (!durability_.enabled) return;
    const net::FaultPlan& plan = network_.fault_plan();
    if (plan.empty()) return;
    const std::uint64_t now = network_.now_us();
    for (const auto& n : nodes_) plan.notify_restarts(n->id(), now);
}

void System::note_recovery(net::NodeId node_id, const Wal::ReplayResult& res,
                           std::uint64_t t_us) {
    // The node is alive again and its replay applied any Relocate records,
    // so it forwards for itself now — the relocation entry has served.
    relocations_.erase(node_id);
    if (wal_recoveries_) {
        wal_recoveries_->add();
        wal_replayed_->add(res.records);
    }
    if (journal_.enabled())
        journal_.record(obs::JournalEvent::Kind::Recover, t_us, node_id, -1,
                        res.records, res.bytes, {});
}

CircuitBreaker& System::breaker(net::NodeId dst, const std::string& protocol) {
    auto it = breakers_.find({dst, protocol});
    if (it == breakers_.end()) {
        CircuitBreaker b;
        b.state_gauge = &metrics_.gauge("rpc.breaker." + std::to_string(dst) + "." +
                                        protocol + ".state");
        it = breakers_.emplace(std::make_pair(dst, protocol), b).first;
    }
    return it->second;
}

void System::visit_breakers(
    const std::function<void(net::NodeId, const std::string&, const CircuitBreaker&)>&
        fn) const {
    for (const auto& [key, b] : breakers_) fn(key.first, key.second, b);
}

net::CallReply System::rpc(net::NodeId src, net::NodeId dst, const std::string& protocol,
                           net::CallRequest& req) {
    ProtoMetrics& pm = proto_metrics(protocol);
    Node& caller = node(src);
    switch (req.kind) {
        case net::RequestKind::Invoke: pm.calls->add(); break;
        case net::RequestKind::Create: pm.creates->add(); break;
        case net::RequestKind::Discover: pm.discovers->add(); break;
    }
    const RetryPolicy& rp = reliability_;
    if (rp.deadline_us && req.deadline_us == 0)
        req.deadline_us = caller.clock_us() + rp.deadline_us;
    const std::uint32_t max_attempts = std::max<std::uint32_t>(1, rp.attempts);
    CircuitBreaker* br = rp.breaker_threshold ? &breaker(dst, protocol) : nullptr;
    const net::FaultPlan& plan = network_.fault_plan();

    Dropped last{"", false};
    for (std::uint32_t attempt = 0;; ++attempt) {
        // Circuit breaker gate: while open, fail fast with no wire traffic
        // until the cooldown has elapsed, then let one half-open probe
        // through.  Fast-fails are not failure evidence (nothing was
        // learned about the transport), so they don't bump the counter.
        if (br && br->state == CircuitBreaker::State::Open) {
            if (caller.clock_us() >= br->opened_at_us + rp.breaker_cooldown_us) {
                br->set_state(CircuitBreaker::State::HalfOpen);
                if (journal_.enabled())
                    journal_.record(obs::JournalEvent::Kind::Breaker,
                                    caller.clock_us(), dst, src, 2, 0, protocol);
            } else {
                rpc_breaker_open_->add();
                throw Dropped{"breaker open for node " + std::to_string(dst) + " via " +
                                  protocol,
                              last.executed_remotely, /*fast_fail=*/true};
            }
        }
        bool failed = false;
        // A destination known to be crashed fails fast (the simulation
        // analogue of connection-refused): no latency is charged and no
        // PRNG is drawn, but the attempt still counts against the policy.
        if (plan.node_down(dst, caller.clock_us())) {
            pm.drops->add();
            note_node_fault(dst, true, caller.clock_us());
            last = Dropped{"node " + std::to_string(dst) + " is down",
                           /*executed_remotely=*/false, /*fast_fail=*/true};
            failed = true;
        } else {
            note_node_fault(dst, false, caller.clock_us());
            req.attempt = attempt;
            try {
                obs::ScopedSpan span;
                if (tracer_.enabled() && attempt > 0) {
                    span = obs::ScopedSpan(
                        tracer_, "rpc.attempt " + std::to_string(attempt), src);
                    tracer_.note("request_id", std::to_string(req.request_id));
                }
                net::CallReply reply = rpc_attempt(src, dst, protocol, req, pm);
                // Any decoded reply — fault or not — proves the transport
                // round-trip works; guest-level faults never trip the
                // breaker and are never retried.
                if (br) {
                    const bool reopened = br->state != CircuitBreaker::State::Closed;
                    br->record_success();
                    if (reopened && journal_.enabled())
                        journal_.record(obs::JournalEvent::Kind::Breaker,
                                        caller.clock_us(), dst, src, 0, 0, protocol);
                }
                return reply;
            } catch (const Dropped& d) {
                last = d;
                failed = true;
            }
        }
        if (failed && br &&
            br->record_failure(rp.breaker_threshold, caller.clock_us())) {
            log_info("runtime", "breaker opened for node ", dst, " via ", protocol);
            if (journal_.enabled())
                journal_.record(obs::JournalEvent::Kind::Breaker, caller.clock_us(),
                                dst, src, 1, 0, protocol);
        }
        // Retry decision.  Reply-loss means the callee already executed:
        // without dedup a retry would re-execute (the §12 instance leak),
        // so the loss surfaces instead.
        if (last.executed_remotely && !rp.dedup) break;
        if (attempt + 1 >= max_attempts) break;
        if (rp.retry_budget && retries_spent_ >= rp.retry_budget) break;
        std::uint64_t delay = rp.backoff_base_us;
        for (std::uint32_t k = 0; k < attempt && delay < rp.backoff_cap_us; ++k)
            delay = static_cast<std::uint64_t>(
                static_cast<double>(delay) * rp.backoff_multiplier);
        if (rp.backoff_cap_us) delay = std::min(delay, rp.backoff_cap_us);
        if (rp.jitter_us) delay += retry_jitter_rng_.below(rp.jitter_us + 1);
        if (req.deadline_us && caller.clock_us() + delay >= req.deadline_us) {
            rpc_timeouts_->add();
            if (journal_.enabled())
                journal_.record(obs::JournalEvent::Kind::RpcTimeout,
                                caller.clock_us(), src, dst, req.request_id, 0,
                                "client");
            last.what = "deadline exceeded after " + std::to_string(attempt + 1) +
                        " attempt(s): " + last.what;
            break;
        }
        caller.advance_clock(delay);
        caller.sync_guest_time();
        ++retries_spent_;
        rpc_retries_->add();
        if (last.executed_remotely) rpc_retries_reply_loss_->add();
        if (journal_.enabled())
            journal_.record(obs::JournalEvent::Kind::RpcRetry, caller.clock_us(),
                            src, dst, req.request_id, attempt + 1, {});
    }
    throw last;
}

void System::note_node_fault(net::NodeId dst, bool down, std::uint64_t t_us) {
    if (!journal_.enabled()) return;
    auto [it, inserted] = node_fault_seen_.try_emplace(dst, false);
    if (it->second != down || (inserted && down))
        journal_.record(obs::JournalEvent::Kind::FaultEdge, t_us, dst, -1,
                        down ? 1 : 0, 0, "node");
    it->second = down;
}

net::CallReply System::rpc_attempt(net::NodeId src, net::NodeId dst,
                                   const std::string& protocol, net::CallRequest& req,
                                   ProtoMetrics& pm) {
    net::Codec& c = codec(protocol);
    Node& caller = node(src);
    Node& callee = node(dst);
    const bool traced = tracer_.enabled();
    // Stamp the caller's trace context into the wire header; the server
    // side parents its dispatch span from these fields, not from the stack.
    req.trace_id = tracer_.current_trace();
    req.parent_span = tracer_.current_span();

    // Codec CPU for a payload, split so the node that serialises pays the
    // encode half and the node that parses pays the decode half.  The two
    // halves sum to the exact legacy combined charge, so one sequential
    // client reduces to the old global-clock arithmetic to the microsecond.
    auto codec_cost = [&](std::size_t size) {
        const std::uint64_t total = static_cast<std::uint64_t>(
            std::llround(2.0 * c.cpu_cost_ns_per_byte() * static_cast<double>(size) /
                         1000.0));  // encode + decode
        return std::pair<std::uint64_t, std::uint64_t>{total / 2, total - total / 2};
    };

    // The request frame encodes straight into a pooled buffer; no
    // per-call vector churn (DESIGN.md §17).
    support::PooledBuffer request_frame(buffer_pool_);
    Bytes& request_bytes = request_frame.bytes();
    BatchLane& lane = batch_lanes_[{src, dst}];
    bool coalesce = false;
    net::BatchContext entry_ctx;
    {
        obs::ScopedSpan span;
        if (traced)
            span = obs::ScopedSpan(tracer_, "codec.encode_request " + protocol, src);
        // Batch join: if the directed link still carries an earlier
        // same-protocol request frame with room, tentatively encode this
        // call as a compact continuation entry.  The join must be decided
        // against the clock *after* the encode charge (the entry's own
        // size sets the charge), so encode first and fall back to a full
        // frame when the link turns out to be free by then.
        if (batching_.enabled && lane.joinable && lane.protocol == protocol &&
            c.supports_batch_entries() &&
            1 + lane.entries < std::max<std::uint32_t>(2, batching_.max_frame_calls)) {
            ByteWriter w(request_bytes);
            c.encode_batch_entry(req, lane.ctx, w);
            coalesce = caller.clock_us() + codec_cost(request_bytes.size()).first <
                       network_.link_busy_until(src, dst);
            if (coalesce) entry_ctx = lane.ctx;
        }
        if (!coalesce) {
            ByteWriter w(request_bytes);
            c.encode_request_into(req, w);
        }
        pm.request_bytes->add(request_bytes.size());
        pm.request_size->record(request_bytes.size());
        req.sim_wire_bytes += request_bytes.size();
        caller.advance_clock(codec_cost(request_bytes.size()).first);
    }
    req.sim_send_us = caller.clock_us();
    if (journal_.enabled())
        journal_.record(obs::JournalEvent::Kind::RpcSend, req.sim_send_us, src, dst,
                        req.request_id, request_bytes.size(),
                        req.stat_class.empty()
                            ? protocol
                            : req.stat_class +
                                  (req.method.empty() ? "" : "." + req.method));
    net::Delivery inbound;
    {
        obs::ScopedSpan span;
        if (traced) {
            span = obs::ScopedSpan(tracer_,
                                   "net.transfer " + std::to_string(src) + "->" +
                                       std::to_string(dst),
                                   src);
            tracer_.note("bytes", std::to_string(request_bytes.size()));
        }
        inbound = coalesce ? network_.transfer_coalesced_at(src, dst,
                                                            request_bytes.size(),
                                                            req.sim_send_us)
                           : network_.transfer_at(src, dst, request_bytes.size(),
                                                  req.sim_send_us);
        if (inbound.delivered && coalesce) {
            if (++lane.entries == 1) batch_frames_->add();
            batch_coalesced_->add();
            batch_entry_bytes_->add(request_bytes.size());
            // The entry rode the open frame's propagation window instead
            // of paying its own.
            batch_latency_saved_us_->add(network_.link(src, dst).latency_us);
            if (traced) tracer_.note("coalesced", "request");
        } else if (inbound.delivered) {
            // This full frame now occupies the link; a same-protocol
            // follower may append to it while it is in flight.
            lane = BatchLane{protocol, net::BatchContext{src, req.request_id}, 0,
                             batching_.enabled && c.supports_batch_entries()};
        } else {
            // The frame (or the frame this entry joined) died on the
            // wire; nothing in flight is joinable any more.
            lane.joinable = false;
        }
        if (!inbound.delivered) {
            pm.drops->add();
            if (traced) tracer_.note("dropped", "request");
            if (journal_.enabled())
                journal_.record(obs::JournalEvent::Kind::RpcDrop, inbound.at_us, src,
                                dst, req.request_id, 0, "request");
            // The sender observes the failure once the propagation window
            // has passed; the decode half of the codec budget is never
            // spent — the request never reached a parser.
            caller.reconcile_clock(inbound.at_us);
            caller.sync_guest_time();
            throw Dropped{"request lost on link " + std::to_string(src) + "->" +
                              std::to_string(dst),
                          /*executed_remotely=*/false};
        }
    }
    req.sim_arrival_us = inbound.at_us;
    // A request landing on a crashed node dies there — never executed.
    // (The caller observes the failure at the arrival time; a restarted
    // node first sheds its soft state, which is how reply-cache loss
    // across a crash is modelled.)
    const net::FaultPlan& plan = network_.fault_plan();
    plan.notify_restarts(dst, inbound.at_us);
    if (plan.node_down(dst, inbound.at_us)) {
        pm.drops->add();
        if (traced) tracer_.note("dropped", "dest_crashed");
        note_node_fault(dst, true, inbound.at_us);
        if (journal_.enabled())
            journal_.record(obs::JournalEvent::Kind::RpcDrop, inbound.at_us, src,
                            dst, req.request_id, 0, "dest_crashed");
        caller.reconcile_clock(inbound.at_us);
        caller.sync_guest_time();
        throw Dropped{"request reached crashed node " + std::to_string(dst),
                      /*executed_remotely=*/false};
    }
    if (journal_.enabled())
        journal_.record(obs::JournalEvent::Kind::RpcArrive, inbound.at_us, dst, src,
                        req.request_id, request_bytes.size(), {});
    // The server cannot see the request before both its own prior work and
    // the wire delivery are done: clock reconciliation, join point one.
    callee.reconcile_clock(inbound.at_us);
    net::CallRequest decoded;
    {
        obs::ScopedSpan span;
        if (traced)
            span = obs::ScopedSpan(tracer_, "codec.decode_request " + protocol, dst);
        decoded = coalesce ? c.decode_batch_entry(request_bytes, entry_ctx)
                           : c.decode_request(request_bytes);
        decoded.sim_send_us = req.sim_send_us;
        decoded.sim_arrival_us = req.sim_arrival_us;
        callee.advance_clock(codec_cost(request_bytes.size()).second);
    }
    net::CallReply reply;
    {
        obs::ScopedSpan span;
        if (traced) {
            const std::string& what =
                decoded.kind == net::RequestKind::Invoke ? decoded.method : decoded.cls;
            span = obs::ScopedSpan::adopt(
                tracer_, tracer_.begin_remote("rpc.dispatch " + what, dst,
                                              decoded.trace_id, decoded.parent_span));
            if (decoded.attempt)
                tracer_.note("attempt", std::to_string(decoded.attempt));
        }
        // Dispatch is charged on the destination node's clock; its guest
        // code observes the server's own time, not the caller's.
        callee.sync_guest_time();
        if (journal_.enabled())
            journal_.record(
                obs::JournalEvent::Kind::RpcDispatch, callee.clock_us(), dst, src,
                decoded.request_id, decoded.attempt,
                decoded.kind == net::RequestKind::Invoke ? decoded.method
                                                         : decoded.cls);
        reply = callee.handle_request(decoded, protocol);
    }

    support::PooledBuffer reply_frame(buffer_pool_);
    Bytes& reply_bytes = reply_frame.bytes();
    {
        obs::ScopedSpan span;
        if (traced)
            span = obs::ScopedSpan(tracer_, "codec.encode_reply " + protocol, dst);
        ByteWriter w(reply_bytes);
        c.encode_reply_into(reply, w);
        pm.reply_bytes->add(reply_bytes.size());
        pm.reply_size->record(reply_bytes.size());
        req.sim_wire_bytes += reply_bytes.size();
        callee.advance_clock(codec_cost(reply_bytes.size()).first);
    }
    net::Delivery outbound;
    {
        obs::ScopedSpan span;
        if (traced) {
            span = obs::ScopedSpan(tracer_,
                                   "net.transfer " + std::to_string(dst) + "->" +
                                       std::to_string(src),
                                   dst);
            tracer_.note("bytes", std::to_string(reply_bytes.size()));
        }
        outbound = network_.transfer_at(dst, src, reply_bytes.size(), callee.clock_us());
        // The reply frame is what now occupies the reverse link; a later
        // request on that link must open its own frame.
        batch_lanes_[{dst, src}].joinable = false;
        if (!outbound.delivered) {
            pm.drops->add();
            if (traced) tracer_.note("dropped", "reply");
            if (journal_.enabled())
                journal_.record(obs::JournalEvent::Kind::RpcDrop, outbound.at_us,
                                dst, src, req.request_id, 0, "reply");
            caller.reconcile_clock(outbound.at_us);
            caller.sync_guest_time();
            callee.sync_guest_time();
            // The dispatch above already ran: this is the "executed but
            // reply lost" arm of at-most-once (DESIGN.md §12).
            throw Dropped{"reply lost on link " + std::to_string(dst) + "->" +
                              std::to_string(src),
                          /*executed_remotely=*/true};
        }
    }
    // Join point two: the caller resumes no earlier than the reply arrival.
    // The server is NOT pulled forward by the reply's flight time — it is
    // free to serve the next client the moment it finished encoding, which
    // is exactly where multi-client overlap comes from.  In pipeline mode
    // this join is deferred into the caller's horizon (drained when the
    // pipeline closes), which is what lets its next request depart while
    // the link still carries this one.
    caller.reconcile_reply(outbound.at_us);
    if (journal_.enabled())
        journal_.record(obs::JournalEvent::Kind::RpcReply, outbound.at_us, src, dst,
                        req.request_id, reply_bytes.size(), {});
    net::CallReply decoded_reply;
    {
        obs::ScopedSpan span;
        if (traced)
            span = obs::ScopedSpan(tracer_, "codec.decode_reply " + protocol, src);
        decoded_reply = c.decode_reply(reply_bytes);
        caller.advance_clock(codec_cost(reply_bytes.size()).second);
    }
    if (decoded_reply.is_fault) pm.faults->add();
    caller.sync_guest_time();
    callee.sync_guest_time();
    return decoded_reply;
}

void System::wire_node(Node& n) {
    const net::NodeId node_id = n.id();
    vm::Interpreter& interp = n.interp();

    for (const std::string& cls : result_.report.substituted_classes()) {
        const std::string o_int_desc = "L" + naming::o_int(cls) + ";";
        const std::string o_local = naming::o_local(cls);

        // A_O_Factory.make(): the policy decides where the instance lives.
        interp.register_native(
            naming::o_factory(cls), "make", "()" + o_int_desc,
            [this, cls, node_id, o_local,
             lat = static_cast<obs::Histogram*>(nullptr)](
                vm::Interpreter& vm, const Value&, std::vector<Value>) mutable {
                Placement p = policy_.instance_placement(cls, node_id);
                if (p.node == node_id) return vm.construct(o_local, "()V", {});
                obs::ScopedSpan span;
                if (tracer_.enabled())
                    span = obs::ScopedSpan(tracer_, "rpc.create " + cls, node_id);
                net::CallRequest req;
                req.kind = net::RequestKind::Create;
                req.request_id = next_request_id();
                req.src_node = node_id;
                req.cls = cls;
                req.stat_class = cls;
                if (!lat) lat = &metrics_.histogram("rpc.latency." + cls + ".make");
                const std::uint64_t t0 = node(node_id).clock_us();
                try {
                    net::CallReply reply = rpc(node_id, p.node, p.protocol, req);
                    lat->record(node(node_id).clock_us() - t0);
                    if (reply.is_fault) node(node_id).rethrow_fault(reply);
                    return node(node_id).import_value(reply.result, p.protocol);
                } catch (const Dropped& d) {
                    lat->record(node(node_id).clock_us() - t0);
                    node(node_id).throw_remote_fault(d.what);
                }
            });

        // A_C_Factory.discover(): singleton lookup with one-shot clinit.
        const std::string c_int_desc = "L" + naming::c_int(cls) + ";";
        interp.register_native(
            naming::c_factory(cls), "discover", "()" + c_int_desc,
            [this, cls, node_id, lat = static_cast<obs::Histogram*>(nullptr)](
                vm::Interpreter&, const Value&, std::vector<Value>) mutable {
                // With the sharded directory enabled the singleton home is
                // resolved through the owning shard (a modelled control
                // round-trip) instead of the free host-side policy oracle.
                Placement p = directory_.enabled()
                                  ? directory_discover(cls, node_id)
                                  : policy_.singleton_placement(cls, node_id);
                if (p.node == node_id) {
                    // A raw local reference is about to escape the dispatch
                    // seam: the adaptation engine's replication gate needs
                    // to know (DESIGN.md §19), and existing replicas of a
                    // local primary must be conservatively invalidated.
                    if (adapt_ || replicas_.active())
                        note_local_discover(cls, node_id);
                    return node(node_id).local_singleton(cls);
                }
                obs::ScopedSpan span;
                if (tracer_.enabled())
                    span = obs::ScopedSpan(tracer_, "rpc.discover " + cls, node_id);
                net::CallRequest req;
                req.kind = net::RequestKind::Discover;
                req.request_id = next_request_id();
                req.src_node = node_id;
                req.cls = cls;
                req.stat_class = cls;
                if (!lat)
                    lat = &metrics_.histogram("rpc.latency." + cls + ".discover");
                const std::uint64_t t0 = node(node_id).clock_us();
                try {
                    net::CallReply reply = rpc(node_id, p.node, p.protocol, req);
                    lat->record(node(node_id).clock_us() - t0);
                    if (reply.is_fault) node(node_id).rethrow_fault(reply);
                    return node(node_id).import_value(reply.result, p.protocol);
                } catch (const Dropped& d) {
                    lat->record(node(node_id).clock_us() - t0);
                    node(node_id).throw_remote_fault(d.what);
                }
            });

        // Proxy dispatch: one class-level native per generated proxy class.
        // Each dispatcher caches its class's registry handles (one
        // calls/bytes counter pair per remote edge, one latency histogram
        // per method, one counter for loopback) so the hot path never
        // builds a metric name.
        for (const std::string& proto : result_.report.protocols()) {
            auto dispatch = [this, node_id, proto, cls,
                             edge_counters = std::map<net::NodeId, obs::Counter*>{},
                             byte_counters = std::map<net::NodeId, obs::Counter*>{},
                             latency_hists =
                                 std::map<std::string, obs::Histogram*>{},
                             local_counter = static_cast<obs::Counter*>(nullptr)](
                                vm::Interpreter& vm, const model::Method& m,
                                const Value& receiver,
                                std::vector<Value> args) mutable {
                Node& self = node(node_id);
                net::CallRequest req;
                req.kind = net::RequestKind::Invoke;
                req.request_id = next_request_id();
                req.src_node = node_id;
                req.target_oid = static_cast<std::uint64_t>(
                    vm.get_field(receiver.as_ref(), naming::kProxyOidField).as_long());
                std::int32_t target_node =
                    vm.get_field(receiver.as_ref(), naming::kProxyNodeField).as_int();
                req.method = m.name;
                req.desc = m.descriptor();
                obs::ScopedSpan span;
                if (tracer_.enabled()) {
                    span = obs::ScopedSpan(tracer_, "rpc.invoke " + cls + "." + m.name,
                                           node_id);
                    tracer_.note("target_node", std::to_string(target_node));
                }
                // Read-mostly replication (DESIGN.md §19): a node-local
                // copy of the target serves read-only methods without
                // touching the wire; anything else aimed at a replicated
                // primary invalidates every copy up front (conservative —
                // charged even if the write then faults), then proceeds on
                // the normal path.
                if (replicas_.active() &&
                    replicas_.has_replicas(target_node, req.target_oid)) {
                    if (replicas_.method_is_readonly(cls, m.name)) {
                        if (Replica* rep = replicas_.find(
                                target_node, req.target_oid, node_id)) {
                            if (!rep->valid)
                                refresh_replica(cls, target_node,
                                                req.target_oid, *rep);
                            adapt_replica_reads_->add();
                            return vm.call_virtual(Value::of_ref(rep->oid),
                                                   m.name, m.descriptor(),
                                                   std::move(args));
                        }
                    } else {
                        invalidate_replicas(target_node, req.target_oid, cls);
                    }
                }
                // Loopback: a proxy whose target lives on this node (e.g.
                // after shorten_chain collapsed a cycle) dispatches
                // directly, no wire involved.
                if (target_node == node_id) {
                    if (!local_counter)
                        local_counter =
                            &metrics_.counter("runtime.local_calls." + cls);
                    local_counter->add();
                    return vm.call_virtual(Value::of_ref(req.target_oid), m.name,
                                           m.descriptor(), std::move(args));
                }
                obs::Counter*& edge = edge_counters[target_node];
                obs::Counter*& edge_bytes = byte_counters[target_node];
                if (!edge) {
                    // Resolved through the matrix cap: past
                    // class_matrix_cap distinct edges these point at the
                    // overflow aggregates instead of named counters.
                    auto [calls_ctr, bytes_ctr] =
                        matrix_counters(cls, node_id, target_node);
                    edge = calls_ctr;
                    edge_bytes = bytes_ctr;
                }
                edge->add();
                obs::Histogram*& lat = latency_hists[m.name];
                if (!lat)
                    lat = &metrics_.histogram("rpc.latency." + cls + "." + m.name);
                req.stat_class = cls;
                req.args.reserve(args.size());
                for (const Value& a : args) req.args.push_back(self.export_value(a));
                const std::uint64_t t0 = self.clock_us();
                try {
                    net::CallReply reply = rpc(node_id, target_node, proto, req);
                    edge_bytes->add(req.sim_wire_bytes);
                    lat->record(self.clock_us() - t0);
                    if (reply.is_fault) self.rethrow_fault(reply);
                    return self.import_value(reply.result, proto);
                } catch (const Dropped& d) {
                    edge_bytes->add(req.sim_wire_bytes);
                    lat->record(self.clock_us() - t0);
                    self.throw_remote_fault(d.what);
                }
            };
            interp.register_class_native(naming::o_proxy(cls, proto), dispatch);
            interp.register_class_native(naming::c_proxy(cls, proto), dispatch);
        }
    }
}

Value System::call_static(net::NodeId node_id, const std::string& cls,
                          const std::string& method, const std::string& desc,
                          std::vector<Value> args) {
    vm::Interpreter& interp = node(node_id).interp();
    if (!result_.report.substituted(cls))
        return interp.call_static(cls, method, desc, std::move(args));
    Value me = interp.call_static(naming::c_factory(cls), "discover",
                                  "()L" + naming::c_int(cls) + ";");
    return interp.call_virtual(me, method,
                               result_.report.map_method_desc(prepared_, desc),
                               std::move(args));
}

Value System::construct(net::NodeId node_id, const std::string& cls,
                        const std::string& ctor_desc, std::vector<Value> args) {
    if (!result_.report.substituted(cls))
        return node(node_id).interp().construct(cls, ctor_desc, std::move(args));
    vm::Interpreter& interp = node(node_id).interp();
    Value obj =
        interp.call_static(naming::o_factory(cls), "make", "()L" + naming::o_int(cls) + ";");
    std::string mapped = result_.report.map_method_desc(prepared_, ctor_desc);
    // init takes the created object as the extra first parameter.
    std::string init_desc = "(L" + naming::o_int(cls) + ";" + mapped.substr(1);
    std::vector<Value> init_args;
    init_args.reserve(args.size() + 1);
    init_args.push_back(obj);
    for (Value& a : args) init_args.push_back(std::move(a));
    interp.call_static(naming::o_factory(cls), "init", init_desc, std::move(init_args));
    return obj;
}

vm::ObjId System::migrate_instance(net::NodeId from, vm::ObjId oid, net::NodeId to,
                                   const std::string& protocol) {
    const std::string proto = protocol.empty() ? policy_.default_protocol() : protocol;
    Node& f = node(from);
    Node& t = node(to);
    const std::string& cls_name = f.interp().class_of(oid).name;
    auto iface = naming::local_to_interface(cls_name);
    if (!iface)
        throw RuntimeError("can only migrate local implementations, not " + cls_name);

    obs::ScopedSpan span;
    if (tracer_.enabled()) {
        span = obs::ScopedSpan(tracer_, "runtime.migrate " + cls_name, from);
        tracer_.note("from", std::to_string(from));
        tracer_.note("to", std::to_string(to));
    }

    // Marshal the object state (references become remote references).
    const model::Layout& layout = result_.pool.layout_of(cls_name);
    net::CallRequest transfer_msg;  // used for wire-size accounting
    transfer_msg.kind = net::RequestKind::Create;
    transfer_msg.request_id = next_request_id();
    transfer_msg.src_node = from;
    transfer_msg.cls = cls_name;
    for (const model::FieldSlot& slot : layout.slots)
        transfer_msg.args.push_back(f.export_value(f.interp().get_field(oid, slot.name)));

    // Migration uses a reliable control channel: account the transfer cost
    // (an injected "drop" still draws from the PRNG and occupies the link,
    // but the move proceeds regardless).  It is a stop-the-world control
    // operation — the vacated slot and the policy tables are global state —
    // so *every* node reconciles to the landing time (a synchronization
    // barrier, DESIGN.md §13), which is exactly the old global-clock
    // behaviour.
    net::Codec& c = codec(proto);
    Bytes payload = c.encode_request(transfer_msg);
    net::Delivery landed = network_.transfer_at(from, to, payload.size(), f.clock_us());
    for (const auto& n : nodes_) n->reconcile_clock(landed.at_us);

    // The barrier also quiesces the wire model: any batch lane still
    // marked joinable refers to a frame opened before the migration, and a
    // post-migration call must never coalesce onto a frame addressed to
    // the old home (§17 composed with migration; regression-tested).
    for (auto& [_, lane] : batch_lanes_) lane.joinable = false;
    // Replicas of the moved object lose their provenance at the same
    // barrier — the primary no longer lives at (from, oid).
    if (replicas_.active()) replicas_.drop_primary(from, oid);

    // Materialise on the target node.
    vm::ObjId new_oid = t.interp().allocate(cls_name);
    for (std::size_t k = 0; k < layout.slots.size(); ++k)
        t.interp().set_field(new_oid, layout.slots[k].name,
                             t.import_value(transfer_msg.args[k], proto));

    // Swap the vacated slot for a proxy: local references on `from` now go
    // remote, and proxies elsewhere chain through it (Figure 1).
    const model::ClassFile& proxy_cls =
        result_.pool.get(naming::interface_to_proxy(*iface, proto));
    f.interp().heap().transmute(
        oid, proxy_cls,
        {Value::of_int(to), Value::of_long(static_cast<std::int64_t>(new_oid))});
    // The transmute bypasses the VM's mutation paths (it is a runtime
    // substitution, not guest code), so the WAL must hear about it
    // explicitly or a recovered `from` would resurrect the migrated object.
    if (f.durable())
        f.wal()->append_transmute(f.clock_us(), oid, proxy_cls.name, to, new_oid);

    migrations_counter_->add();
    migration_bytes_counter_->add(payload.size());
    if (directory_.enabled()) {
        // The owning shard learns the relocation, so directory lookups for
        // (from, oid) resolve straight to the new home instead of chasing
        // the proxy chain; stale per-node caches are shed at the same
        // barrier the migration already imposes.
        directory_.put_object(from, oid, to, new_oid);
        directory_.invalidate_caches();
        dir_updates_->add();
        dir_entries_->set(static_cast<std::int64_t>(directory_.total_entries()));
    }
    if (journal_.enabled())
        journal_.record(obs::JournalEvent::Kind::Migrate, landed.at_us, from, to,
                        oid, new_oid, cls_name);
    f.sync_guest_time();
    t.sync_guest_time();
    log_info("runtime", "migrated ", cls_name, " (", from, ",", oid, ") -> (", to, ",",
             new_oid, ")");
    return new_oid;
}

void System::migrate_singleton(const std::string& cls, net::NodeId to,
                               const std::string& protocol) {
    const std::string proto = protocol.empty() ? policy_.default_protocol() : protocol;
    Placement current = policy_.singleton_placement(cls, to);
    policy_.set_singleton_home(cls, to, proto);
    if (directory_.enabled()) {
        directory_.put_singleton(cls, to, proto);
        directory_.invalidate_caches();
        dir_updates_->add();
        dir_entries_->set(static_cast<std::int64_t>(directory_.total_entries()));
    }
    if (current.node == to) return;
    Node& home = node(current.node);
    auto it = home.singletons_.find(cls);
    if (it == home.singletons_.end()) return;  // not created yet: policy is enough
    vm::ObjId new_oid = migrate_instance(current.node, it->second, to, proto);
    Node& tgt = node(to);
    tgt.singletons_[cls] = new_oid;
    if (tgt.durable()) tgt.wal()->append_singleton(tgt.clock_us(), cls, new_oid);
    home.singletons_.erase(cls);
    if (home.durable()) home.wal()->append_singleton_drop(home.clock_us(), cls);
}

namespace {

/// Offline decode of a crashed node's durable image (snapshot + log) into
/// a materializable picture: the heap as last-write-wins field maps, the
/// singleton registry, the imported-proxy table and the reply cache in
/// FIFO order.  Statics and class-init marks are deliberately ignored —
/// they are per-address-space and the *target* node's own <clinit> runs
/// govern there; all object state that matters lives in instance fields.
struct RecoveredImage final : WalVisitor {
    struct Obj {
        bool is_array = false;
        std::string cls;          // class name; element descriptor for arrays
        std::uint64_t length = 0;  // arrays only
        std::map<std::uint64_t, vm::Value> fields;  // slot -> last value
    };
    std::vector<Obj> objects;  // index = oid - 1 (arena order)
    std::map<std::string, std::uint64_t> singletons;
    std::vector<std::tuple<std::int32_t, std::uint64_t, std::string, std::string,
                           std::uint64_t>>
        imports;
    std::vector<std::pair<std::uint64_t, net::CallReply>> replies;  // FIFO

    void on_alloc(std::uint64_t, const std::string& cls) override {
        objects.push_back({false, cls, 0, {}});
    }
    void on_alloc_array(std::uint64_t, const std::string& elem_desc,
                        std::uint64_t length) override {
        objects.push_back({true, elem_desc, length, {}});
    }
    void on_field_put(std::uint64_t, std::uint64_t oid, std::uint64_t slot,
                      const vm::Value& v) override {
        if (oid && oid <= objects.size()) objects[oid - 1].fields[slot] = v;
    }
    void on_array_put(std::uint64_t t, std::uint64_t oid, std::uint64_t index,
                      const vm::Value& v) override {
        on_field_put(t, oid, index, v);
    }
    void on_singleton(std::uint64_t, const std::string& cls,
                      std::uint64_t oid) override {
        singletons[cls] = oid;
    }
    void on_singleton_drop(std::uint64_t, const std::string& cls) override {
        singletons.erase(cls);
    }
    void on_proxy_import(std::uint64_t, std::int32_t origin_node,
                         std::uint64_t origin_oid, const std::string& iface,
                         const std::string& protocol,
                         std::uint64_t local_oid) override {
        imports.emplace_back(origin_node, origin_oid, iface, protocol, local_oid);
    }
    void on_reply(std::uint64_t, std::uint64_t request_id,
                  const net::CallReply& reply) override {
        replies.emplace_back(request_id, reply);
    }
    void on_transmute(std::uint64_t, std::uint64_t oid, const std::string& proxy_cls,
                      std::int32_t node, std::uint64_t remote_oid) override {
        if (!oid || oid > objects.size()) return;
        // The slot became a proxy before the crash: its state lives at
        // (node, remote_oid), so the image carries only the proxy.
        Obj& o = objects[oid - 1];
        o.is_array = false;
        o.cls = proxy_cls;
        o.fields.clear();
        o.fields[0] = Value::of_int(node);
        o.fields[1] = Value::of_long(static_cast<std::int64_t>(remote_oid));
    }
    void on_relocate(std::uint64_t t, std::uint64_t oid, const std::string& proxy_cls,
                     std::int32_t node, std::uint64_t remote_oid) override {
        on_transmute(t, oid, proxy_cls, node, remote_oid);
    }
};

}  // namespace

std::size_t System::recover_node_onto(net::NodeId crashed, net::NodeId target,
                                      const std::string& protocol) {
    if (crashed == target)
        throw RuntimeError("recover_node_onto: target is the crashed node itself");
    if (relocations_.count(crashed)) return 0;  // already relocated this crash
    const std::string proto = protocol.empty() ? policy_.default_protocol() : protocol;
    Node& c = node(crashed);
    Node& t = node(target);
    if (!c.durable() || c.wal()->empty())
        throw RuntimeError("node " + std::to_string(crashed) +
                           " has no durable image to recover from");

    obs::ScopedSpan span;
    if (tracer_.enabled()) {
        span = obs::ScopedSpan(tracer_, "runtime.recover_onto", target);
        tracer_.note("crashed", std::to_string(crashed));
    }

    // Decode the durable image offline — the crashed node itself is not
    // touched (it is down; its own in-memory state is dead anyway).
    RecoveredImage img;
    Wal::replay(c.wal()->snapshot(), img);
    Wal::replay(c.wal()->log(), img);

    // Reading the image is a bulk transfer from the crashed node's stable
    // storage to the target: charged on the wire like a migration, and
    // like migration it is a stop-the-world control operation — every
    // node reconciles to the landing time (DESIGN.md §13 barrier).
    const std::size_t image_bytes = c.wal()->snapshot().size() + c.wal()->log().size();
    net::Delivery landed =
        network_.transfer_at(crashed, target, image_bytes, t.clock_us());
    for (const auto& n : nodes_) n->reconcile_clock(landed.at_us);
    for (auto& [_, lane] : batch_lanes_) lane.joinable = false;

    // Pass 1 — allocate every object on the target in image (arena)
    // order; the remap table carries old oid -> new oid.
    std::map<vm::ObjId, vm::ObjId> remap;
    for (std::size_t i = 0; i < img.objects.size(); ++i) {
        const RecoveredImage::Obj& o = img.objects[i];
        vm::ObjId new_id;
        if (o.is_array) {
            new_id = t.interp().restore_array(o.cls,
                                              static_cast<std::size_t>(o.length));
            if (t.durable())
                t.wal()->append_alloc_array(t.clock_us(), o.cls, o.length);
        } else {
            new_id = t.interp().restore_object(o.cls);
            if (t.durable()) t.wal()->append_alloc(t.clock_us(), o.cls);
        }
        remap[static_cast<vm::ObjId>(i + 1)] = new_id;
        if (replicas_.active())
            replicas_.drop_primary(crashed, static_cast<vm::ObjId>(i + 1));
    }

    // Pass 2 — fill fields.  References were crashed-local object ids, so
    // they remap; proxy node/oid fields are plain ints/longs (global
    // values) and copy verbatim.
    for (std::size_t i = 0; i < img.objects.size(); ++i) {
        const RecoveredImage::Obj& o = img.objects[i];
        const vm::ObjId new_id = remap.at(static_cast<vm::ObjId>(i + 1));
        for (const auto& [slot, v] : o.fields) {
            vm::Value w = v;
            if (v.is_ref()) {
                const auto it = remap.find(v.as_ref());
                if (it == remap.end())
                    throw RuntimeError("recovered image has a dangling reference");
                w = Value::of_ref(it->second);
            }
            t.interp().restore_field(new_id, static_cast<std::size_t>(slot), w);
            if (t.durable()) {
                if (o.is_array)
                    t.wal()->append_array_put(t.clock_us(), new_id, slot, w);
                else
                    t.wal()->append_field_put(t.clock_us(), new_id, slot, w);
            }
        }
    }

    // Singleton registry: the recovered instances are the authoritative
    // singletons, and policy + directory must send future discover()
    // traffic to their new home.
    for (const auto& [cls, old_oid] : img.singletons) {
        const auto it = remap.find(old_oid);
        if (it == remap.end()) continue;
        t.singletons_[cls] = it->second;
        if (t.durable()) t.wal()->append_singleton(t.clock_us(), cls, it->second);
        policy_.set_singleton_home(cls, target, proto);
        if (directory_.enabled()) directory_.put_singleton(cls, target, proto);
    }

    // Imported-proxy table: the copies of the crashed node's proxies keep
    // deduplicating against the same origin keys on the target (existing
    // target entries win — they already point at live local proxies).
    for (const auto& [origin_node, origin_oid, iface, ip, local_oid] : img.imports) {
        const auto it = remap.find(local_oid);
        if (it == remap.end()) continue;
        auto key = std::make_tuple(static_cast<net::NodeId>(origin_node), origin_oid,
                                   iface, ip);
        if (t.imported_.emplace(key, it->second).second && t.durable())
            t.wal()->append_proxy_import(t.clock_us(), origin_node, origin_oid, iface,
                                         ip, it->second);
    }

    // Reply cache, FIFO order: retried requests the crashed node already
    // executed keep deduplicating — exactly-once survives the node's
    // death, not just its restart.  Replies that exported crashed-local
    // references are remapped to the objects' new home.
    for (auto& [rid, reply] : img.replies) {
        if (reply.result.tag == net::ValueTag::Ref &&
            reply.result.ref_node == crashed) {
            const auto it = remap.find(reply.result.ref_oid);
            if (it != remap.end()) {
                reply.result.ref_node = target;
                reply.result.ref_oid = it->second;
            }
        }
        t.cache_reply(rid, reply, /*journal=*/true);
    }

    // Relocation records into the *crashed* node's own WAL: when it
    // eventually restarts, replay transmutes every moved slot into a proxy
    // to the new home — the recovery analogue of migrate_instance's
    // vacated-slot substitution, and relocations chain exactly like
    // migrations do.  Non-substitutable classes (and arrays) have no proxy
    // family, and no external references either; the restarted node keeps
    // its local copy of those.
    std::size_t relocated = 0;
    std::map<vm::ObjId, std::string> singleton_of;
    for (const auto& [cls, old_oid] : img.singletons) singleton_of[old_oid] = cls;
    for (std::size_t i = 0; i < img.objects.size(); ++i) {
        const RecoveredImage::Obj& o = img.objects[i];
        const vm::ObjId old_oid = static_cast<vm::ObjId>(i + 1);
        if (o.is_array || naming::parse_proxy(o.cls)) continue;
        auto iface = naming::local_to_interface(o.cls);
        if (!iface) continue;
        c.wal()->append_relocate(landed.at_us, old_oid,
                                 naming::interface_to_proxy(*iface, proto), target,
                                 remap.at(old_oid));
        // A relocated singleton is no longer this node's singleton: the
        // drop record makes the restart replay erase the registration
        // (mirroring migrate_singleton), and the in-memory erase keeps
        // find_singleton from reporting the dead node as home meanwhile —
        // that memory is volatile state the restart wipes anyway.
        const auto sit = singleton_of.find(old_oid);
        if (sit != singleton_of.end()) {
            c.wal()->append_singleton_drop(landed.at_us, sit->second);
            c.singletons_.erase(sit->second);
        }
        if (directory_.enabled()) directory_.put_object(crashed, old_oid, target,
                                                        remap.at(old_oid));
        ++relocated;
    }

    // Live proxies elsewhere still aim at the dead node; repoint them at
    // the new home (set_field runs the owner's own observer, so durable
    // peers journal the repoint themselves).
    for (const auto& n : nodes_) {
        if (n->id() == crashed) continue;
        vm::Interpreter& interp = n->interp();
        for (vm::ObjId id = 1; id <= interp.heap().size(); ++id) {
            const vm::Object& o = interp.heap().get(id);
            if (o.is_array || !o.cls || !naming::parse_proxy(o.cls->name)) continue;
            if (interp.get_field(id, naming::kProxyNodeField).as_int() != crashed)
                continue;
            const std::uint64_t old_oid = static_cast<std::uint64_t>(
                interp.get_field(id, naming::kProxyOidField).as_long());
            const auto it = remap.find(old_oid);
            if (it == remap.end()) continue;
            interp.set_field(id, naming::kProxyNodeField, Value::of_int(target));
            interp.set_field(id, naming::kProxyOidField,
                             Value::of_long(static_cast<std::int64_t>(it->second)));
        }
    }

    if (directory_.enabled()) {
        directory_.invalidate_caches();
        dir_updates_->add();
        dir_entries_->set(static_cast<std::int64_t>(directory_.total_entries()));
    }
    if (wal_relocated_) wal_relocated_->add(relocated);
    if (journal_.enabled())
        journal_.record(obs::JournalEvent::Kind::Recover, landed.at_us, crashed,
                        target, img.objects.size(), image_bytes, {});
    for (const auto& n : nodes_) n->sync_guest_time();
    log_info("runtime", "recovered node ", crashed, " onto ", target, ": ",
             img.objects.size(), " objects (", relocated, " relocated, ",
             img.replies.size(), " cached replies) from a ", image_bytes,
             "-byte durable image");
    relocations_[crashed] = Relocation{target, std::move(remap)};
    return img.objects.size();
}

void System::enable_adaptation(AdaptPolicy policy) {
    policy.enabled = true;
    ensure_replica_counters();
    adapt_ = std::make_unique<AdaptationEngine>(*this, policy);
}

bool System::adaptation_tick(bool force) {
    return adapt_ ? adapt_->tick(network_.now_us(), force) : false;
}

void System::adaptation_finalize() {
    if (adapt_) adapt_->finalize();
}

std::pair<net::NodeId, vm::ObjId> System::find_singleton(const std::string& cls) {
    for (const auto& n : nodes_) {
        auto it = n->singletons_.find(cls);
        if (it != n->singletons_.end()) return {n->id(), it->second};
    }
    return {-1, 0};
}

void System::ensure_replica_counters() {
    if (adapt_invalidations_) return;
    adapt_invalidations_ = &metrics_.counter("adapt.invalidations");
    adapt_replica_reads_ = &metrics_.counter("adapt.replica_reads");
    adapt_replica_refreshes_ = &metrics_.counter("adapt.replica_refreshes");
}

vm::ObjId System::create_replica(net::NodeId primary, vm::ObjId oid,
                                 const std::string& cls, net::NodeId reader) {
    if (primary == reader)
        throw RuntimeError("replica reader is the primary's own node");
    ensure_replica_counters();
    Node& p = node(primary);
    Node& r = node(reader);
    const std::string& impl = p.interp().class_of(oid).name;
    const model::Layout& layout = result_.pool.layout_of(impl);
    const std::string proto = policy_.default_protocol();

    net::CallRequest msg;
    msg.kind = net::RequestKind::Create;
    msg.request_id = next_request_id();
    msg.src_node = primary;
    msg.cls = impl;
    for (const model::FieldSlot& slot : layout.slots)
        msg.args.push_back(p.export_value(p.interp().get_field(oid, slot.name)));
    Bytes payload = codec(proto).encode_request(msg);
    // Reliable control channel, like migration — but NOT a barrier: only
    // the reader learns (its clock reconciles to the landing).
    net::Delivery landed =
        network_.transfer_at(primary, reader, payload.size(), p.clock_us());
    r.reconcile_clock(landed.at_us);

    vm::ObjId copy = r.interp().allocate(impl);
    for (std::size_t k = 0; k < layout.slots.size(); ++k)
        r.interp().set_field(copy, layout.slots[k].name,
                             r.import_value(msg.args[k], proto));
    replicas_.put(primary, oid, cls, Replica{reader, copy, true});
    r.sync_guest_time();
    log_info("runtime", "replicated ", cls, " (", primary, ",", oid, ") -> node ",
             reader);
    return copy;
}

void System::refresh_replica(const std::string& cls, net::NodeId primary,
                             vm::ObjId oid, Replica& r) {
    ensure_replica_counters();
    Node& p = node(primary);
    Node& reader = node(r.node);
    const std::string& impl = p.interp().class_of(oid).name;
    const model::Layout& layout = result_.pool.layout_of(impl);
    const std::string proto = policy_.default_protocol();

    net::CallRequest msg;
    msg.kind = net::RequestKind::Create;
    msg.request_id = next_request_id();
    msg.src_node = primary;
    msg.cls = impl;
    for (const model::FieldSlot& slot : layout.slots)
        msg.args.push_back(p.export_value(p.interp().get_field(oid, slot.name)));
    Bytes payload = codec(proto).encode_request(msg);
    net::Delivery landed =
        network_.transfer_at(primary, r.node, payload.size(), p.clock_us());
    reader.reconcile_clock(landed.at_us);

    for (std::size_t k = 0; k < layout.slots.size(); ++k)
        reader.interp().set_field(r.oid, layout.slots[k].name,
                                  reader.import_value(msg.args[k], proto));
    r.valid = true;
    adapt_replica_refreshes_->add();
    if (journal_.enabled())
        journal_.record(obs::JournalEvent::Kind::Adapt, landed.at_us, primary,
                        r.node, 4, payload.size(), cls);
}

void System::invalidate_replicas(net::NodeId primary, vm::ObjId oid,
                                 const std::string& cls) {
    const std::vector<Replica*> flipped = replicas_.invalidate(primary, oid);
    if (flipped.empty()) return;
    ensure_replica_counters();
    const std::uint64_t msg_bytes =
        directory_.enabled() ? directory_.policy().lookup_bytes : 48;
    Node& p = node(primary);

    // Write-invalidate routes through the shard owning the object's
    // directory entry when the directory is on; the writer is not stalled
    // (invalidations are asynchronous control messages), but each
    // recipient reconciles to the arrival — it processed the message.
    net::NodeId origin = primary;
    std::uint64_t origin_clock = p.clock_us();
    if (directory_.enabled()) {
        const net::NodeId owner = directory_.object_owner(primary, oid);
        if (owner != primary) {
            net::Delivery hop =
                network_.transfer_at(primary, owner, msg_bytes, origin_clock);
            node(owner).reconcile_clock(hop.at_us);
            origin = owner;
            origin_clock = node(owner).clock_us();
        }
    }
    std::uint64_t last_t = origin_clock;
    for (Replica* rep : flipped) {
        if (rep->node == origin) continue;  // colocated with the origin
        net::Delivery d =
            network_.transfer_at(origin, rep->node, msg_bytes, origin_clock);
        node(rep->node).reconcile_clock(d.at_us);
        last_t = d.at_us;
    }
    adapt_invalidations_->add(flipped.size());
    if (journal_.enabled())
        journal_.record(obs::JournalEvent::Kind::Adapt, last_t, primary, -1, 3,
                        flipped.size(), cls);
}

void System::note_local_discover(const std::string& cls, net::NodeId node_id) {
    metrics_.counter("runtime.local_discovers." + cls).add();
    if (!replicas_.active()) return;
    // A raw local reference just escaped the dispatch seam on this node;
    // conservatively assume the holder may write through it.
    for (const auto& [pn, poid] : replicas_.primaries_of_class(cls))
        if (pn == node_id) invalidate_replicas(pn, poid, cls);
}

std::size_t System::migrate_closure(net::NodeId from, vm::ObjId oid, net::NodeId to,
                                    const std::string& protocol) {
    Node& f = node(from);
    // Collect the local-implementation closure via BFS over reference
    // fields.  Proxies and the prelude's non-substitutable objects are
    // boundaries: they stay behind (references to them re-proxy normally).
    std::vector<vm::ObjId> order;
    std::set<vm::ObjId> seen;
    std::vector<vm::ObjId> work{oid};
    while (!work.empty()) {
        vm::ObjId cur = work.back();
        work.pop_back();
        if (!seen.insert(cur).second) continue;
        const std::string& cls = f.interp().class_of(cur).name;
        if (!naming::local_to_interface(cls)) continue;  // proxy or raw: boundary
        order.push_back(cur);
        const model::Layout& layout = result_.pool.layout_of(cls);
        for (const model::FieldSlot& slot : layout.slots) {
            if (!slot.type.is_ref()) continue;
            Value v = f.interp().get_field(cur, slot.name);
            if (v.is_ref()) work.push_back(v.as_ref());
        }
    }
    if (order.empty())
        throw RuntimeError("migrate_closure root is not a local implementation");

    // Migrate every member; intra-cluster references heal themselves: when
    // a later member moves, earlier members' proxies back to `from` chain
    // through the transmuted slot.  To keep the cluster truly co-located we
    // migrate members first, then collapse the chains the moves created.
    std::vector<vm::ObjId> new_oids;
    new_oids.reserve(order.size());
    for (vm::ObjId member : order)
        new_oids.push_back(migrate_instance(from, member, to, protocol));

    // Fix-up: fields of the moved copies that point back at `from`-side
    // slots which are now proxies into this same cluster are re-pointed
    // locally on `to`.
    Node& t = node(to);
    for (vm::ObjId moved : new_oids) {
        const std::string& cls = t.interp().class_of(moved).name;
        const model::Layout& layout = result_.pool.layout_of(cls);
        for (const model::FieldSlot& slot : layout.slots) {
            if (!slot.type.is_ref()) continue;
            Value v = t.interp().get_field(moved, slot.name);
            if (!v.is_ref()) continue;
            const std::string& vcls = t.interp().class_of(v.as_ref()).name;
            if (!naming::parse_proxy(vcls)) continue;
            auto [term_node, term_oid] = resolve_terminal(
                t.interp().get_field(v.as_ref(), naming::kProxyNodeField).as_int(),
                static_cast<vm::ObjId>(
                    t.interp().get_field(v.as_ref(), naming::kProxyOidField).as_long()));
            if (term_node == to)
                t.interp().set_field(moved, slot.name, Value::of_ref(term_oid));
        }
    }
    return order.size();
}

std::pair<net::NodeId, vm::ObjId> System::resolve_terminal(net::NodeId node_id,
                                                           vm::ObjId oid) {
    // Cycle guard: a chain can visit each (node, oid) at most once.
    std::set<std::pair<net::NodeId, vm::ObjId>> seen;
    while (true) {
        if (!seen.insert({node_id, oid}).second)
            throw RuntimeError("proxy chain cycle at node " + std::to_string(node_id));
        vm::Interpreter& interp = node(node_id).interp();
        const std::string& cls = interp.class_of(oid).name;
        if (!naming::parse_proxy(cls)) return {node_id, oid};
        net::NodeId next = interp.get_field(oid, naming::kProxyNodeField).as_int();
        vm::ObjId next_oid = static_cast<vm::ObjId>(
            interp.get_field(oid, naming::kProxyOidField).as_long());
        node_id = next;
        oid = next_oid;
    }
}

int System::shorten_chain(net::NodeId node_id, vm::ObjId oid) {
    vm::Interpreter& interp = node(node_id).interp();
    if (!naming::parse_proxy(interp.class_of(oid).name)) return 0;
    net::NodeId first_node = interp.get_field(oid, naming::kProxyNodeField).as_int();
    vm::ObjId first_oid = static_cast<vm::ObjId>(
        interp.get_field(oid, naming::kProxyOidField).as_long());
    auto [term_node, term_oid] = resolve_terminal(first_node, first_oid);

    // Count the intermediate proxies being bypassed.
    int hops = 0;
    {
        net::NodeId n = first_node;
        vm::ObjId o = first_oid;
        while (naming::parse_proxy(node(n).interp().class_of(o).name)) {
            ++hops;
            vm::Interpreter& cur = node(n).interp();
            net::NodeId next = cur.get_field(o, naming::kProxyNodeField).as_int();
            vm::ObjId next_oid = static_cast<vm::ObjId>(
                cur.get_field(o, naming::kProxyOidField).as_long());
            n = next;
            o = next_oid;
        }
    }
    if (hops == 0) return 0;
    interp.set_field(oid, naming::kProxyNodeField, Value::of_int(term_node));
    interp.set_field(oid, naming::kProxyOidField,
                     Value::of_long(static_cast<std::int64_t>(term_oid)));
    chain_shortenings_counter_->add();
    chain_hops_removed_counter_->add(static_cast<std::uint64_t>(hops));
    return hops;
}

const std::map<std::string, RemoteStats>& System::remote_stats() const {
    remote_stats_view_.clear();
    for (const auto& [proto, pm] : proto_metrics_) {
        RemoteStats s;
        s.calls = pm.calls->value();
        s.creates = pm.creates->value();
        s.discovers = pm.discovers->value();
        s.faults = pm.faults->value();
        s.drops = pm.drops->value();
        s.request_bytes = pm.request_bytes->value();
        s.reply_bytes = pm.reply_bytes->value();
        if (s.calls || s.creates || s.discovers || s.faults || s.drops ||
            s.request_bytes || s.reply_bytes)
            remote_stats_view_[proto] = s;
    }
    return remote_stats_view_;
}

const std::map<std::string, System::ClassTraffic>& System::class_traffic() const {
    static constexpr const char* kCalls = "rpc.class_calls.";
    static constexpr const char* kBytes = "rpc.class_bytes.";
    static constexpr std::size_t kPrefixLen = 16;  // both prefixes
    class_traffic_view_.clear();
    metrics_.visit_counters([&](const std::string& name, std::uint64_t value) {
        if (!value) return;
        const bool is_calls = name.compare(0, kPrefixLen, kCalls) == 0;
        const bool is_bytes = !is_calls && name.compare(0, kPrefixLen, kBytes) == 0;
        if (!is_calls && !is_bytes) return;
        // <cls>.<src>.<dst> — class names contain no dots, so split from
        // the right.
        const std::size_t dst_dot = name.rfind('.');
        const std::size_t src_dot = name.rfind('.', dst_dot - 1);
        if (src_dot == std::string::npos || src_dot < kPrefixLen) return;
        const std::string cls = name.substr(kPrefixLen, src_dot - kPrefixLen);
        const net::NodeId src = std::stoi(name.substr(src_dot + 1, dst_dot - src_dot - 1));
        const net::NodeId dst = std::stoi(name.substr(dst_dot + 1));
        ClassTraffic& ct = class_traffic_view_[cls];
        (is_calls ? ct.calls : ct.bytes)[{src, dst}] += value;
    });
    return class_traffic_view_;
}

void System::enable_directory(DirectoryPolicy policy) {
    const std::size_t shards =
        policy.shards == 0
            ? nodes_.size()
            : std::min<std::size_t>(policy.shards, nodes_.size());
    if (shards == 0)
        throw RuntimeError("enable_directory requires at least one node");
    std::vector<net::NodeId> owners;
    owners.reserve(shards);
    for (std::size_t k = 0; k < shards; ++k)
        owners.push_back(static_cast<net::NodeId>(k));
    directory_.configure(std::move(owners), policy);
    dir_lookups_ = &metrics_.counter("directory.lookups");
    dir_remote_ = &metrics_.counter("directory.remote");
    dir_cache_hits_ = &metrics_.counter("directory.cache_hits");
    dir_updates_ = &metrics_.counter("directory.updates");
    dir_entries_ = &metrics_.gauge("directory.entries");
}

void System::directory_control_trip(net::NodeId asker, net::NodeId owner) {
    dir_remote_->add();
    Node& a = node(asker);
    Node& o = node(owner);
    const std::uint64_t bytes = directory_.policy().lookup_bytes;
    net::Delivery query = network_.transfer_at(asker, owner, bytes, a.clock_us());
    o.reconcile_clock(query.at_us);
    // Serving the lookup costs the shard node CPU — the serialization a
    // single-shard directory concentrates and the ring spreads.
    o.advance_clock(directory_.policy().lookup_cpu_us);
    net::Delivery answer = network_.transfer_at(owner, asker, bytes, o.clock_us());
    a.reconcile_clock(answer.at_us);
}

Placement System::directory_discover(const std::string& cls, net::NodeId asker) {
    dir_lookups_->add();
    if (const DirLocation* hit = directory_.cached_singleton(asker, cls)) {
        dir_cache_hits_->add();
        return Placement{hit->node, hit->protocol};
    }
    const net::NodeId owner = directory_.singleton_owner(cls);
    if (owner != asker) directory_control_trip(asker, owner);
    const DirLocation* entry = directory_.find_singleton(cls);
    if (!entry) {
        // First demand: the shard materializes the entry from the
        // placement policy's initial assignment.
        Placement p = policy_.singleton_placement(cls, asker);
        directory_.put_singleton(cls, p.node, p.protocol);
        dir_updates_->add();
        dir_entries_->set(static_cast<std::int64_t>(directory_.total_entries()));
        entry = directory_.find_singleton(cls);
    }
    directory_.cache_singleton(asker, cls, *entry);
    return Placement{entry->node, entry->protocol};
}

std::pair<net::NodeId, vm::ObjId> System::directory_resolve(net::NodeId asker,
                                                            net::NodeId node_id,
                                                            vm::ObjId oid) {
    if (!directory_.enabled())
        throw RuntimeError("directory_resolve requires enable_directory()");
    dir_lookups_->add();
    const net::NodeId owner =
        directory_.object_owner(node_id, static_cast<std::uint64_t>(oid));
    if (owner != asker) directory_control_trip(asker, owner);
    auto [n, o] = directory_.chase_object(node_id, static_cast<std::uint64_t>(oid));
    return {n, static_cast<vm::ObjId>(o)};
}

std::pair<obs::Counter*, obs::Counter*> System::matrix_counters(
    const std::string& cls, net::NodeId src, net::NodeId dst) {
    const std::string key =
        cls + "." + std::to_string(src) + "." + std::to_string(dst);
    if (matrix_keys_.find(key) == matrix_keys_.end()) {
        if (class_matrix_cap_ != 0 && matrix_keys_.size() >= class_matrix_cap_) {
            if (!matrix_calls_overflow_) {
                // The aggregate bucket: traffic past the cap is exactly
                // accounted here, just without per-edge attribution.  The
                // class_traffic() parser skips these names (no src.dst
                // suffix), so views stay well-formed.
                matrix_calls_overflow_ =
                    &metrics_.counter("rpc.class_calls.overflow");
                matrix_bytes_overflow_ =
                    &metrics_.counter("rpc.class_bytes.overflow");
                matrix_overflow_entries_ =
                    &metrics_.counter("rpc.class_matrix.overflow_entries");
            }
            matrix_overflow_entries_->add();
            return {matrix_calls_overflow_, matrix_bytes_overflow_};
        }
        matrix_keys_.insert(key);
    }
    return {&metrics_.counter("rpc.class_calls." + key),
            &metrics_.counter("rpc.class_bytes." + key)};
}

std::uint64_t System::migrations() const noexcept {
    return migrations_counter_ ? migrations_counter_->value() : 0;
}

void System::reset_stats() {
    metrics_.reset();
    tracer_.clear();
    network_.reset_stats();
    // The journal's observation window must rebase together with the
    // utilization epoch: both now describe "since the reset", so timeline
    // events and windowed rates stay comparable (DESIGN.md §16).
    journal_.rebase(network_.now_us());
    // Breaker *state* is semantic, not accounting: re-publish it so the
    // zeroed gauges don't claim every breaker is closed.
    for (auto& [key, b] : breakers_) b.set_state(b.state);
}

}  // namespace rafda::runtime
