// ShardedDirectory — consistent-hash-placed lookup tables for exported
// objects and singletons (DESIGN.md §18).
//
// Without it, every "where does X live?" question is answered by the
// host-side policy map: a free, central oracle — the simulation analogue
// of one registry node mediating every import_ref/discover, which is
// exactly the serialization point a million-client deployment cannot
// afford.  With the directory enabled, resolution becomes a modelled
// distributed operation: keys hash onto a ring of virtual points owned by
// the shard nodes, the owning shard's export table answers, and a
// resolution from a non-owner costs a control round-trip on the simulated
// network (charged in virtual time, occupying real links).  Migration
// updates the owning shard's table, so lookups after `migrate_instance`
// resolve directly to the new home instead of chasing proxy chains.
//
// Shard ownership is a pure function of (key, ring): a node crashing and
// restarting under a FaultPlan never moves entries (the tables are
// modelled as durable control-plane state, replicated like the policy
// itself), so ownership is stable across restarts — asserted by tests.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "net/network.hpp"

namespace rafda::runtime {

/// Knobs for the directory; `System::enable_directory` applies them.
struct DirectoryPolicy {
    /// Shard owners: the first `shards` node ids (0 = every node owns a
    /// shard).
    std::uint32_t shards = 0;
    /// Virtual ring points per shard node; more points = smoother key
    /// spread, same determinism.
    std::uint32_t vnodes = 64;
    /// Size of one control message (query or answer) in wire bytes.
    std::uint64_t lookup_bytes = 48;
    /// CPU charged on the owning shard node per served lookup — the
    /// serialization a *single*-shard directory exhibits and sharding
    /// spreads.
    std::uint64_t lookup_cpu_us = 2;
    /// Per-node resolution caches (invalidated by migration).
    bool cache = true;
};

/// Where an entry lives: a node plus, for singletons, the protocol the
/// asker should speak to it.
struct DirLocation {
    net::NodeId node = 0;
    std::uint64_t oid = 0;       // object entries only
    std::string protocol;        // singleton entries only
};

class ShardedDirectory {
public:
    /// Builds the consistent-hash ring over `owners` (deterministic: ring
    /// points depend only on node ids and `vnodes`).  Empty `owners`
    /// disables the directory.
    void configure(std::vector<net::NodeId> owners, const DirectoryPolicy& policy);

    bool enabled() const noexcept { return !ring_.empty(); }
    const DirectoryPolicy& policy() const noexcept { return policy_; }
    std::size_t shard_count() const noexcept { return owners_.size(); }
    const std::vector<net::NodeId>& owners() const noexcept { return owners_; }

    /// The shard node owning `key` on the ring (first point clockwise of
    /// the key's hash).  Pure in (key, ring): stable across node crashes
    /// and restarts.
    net::NodeId owner(const std::string& key) const;

    /// Stable 64-bit key hash (FNV-1a); exposed for tests.
    static std::uint64_t hash_key(const std::string& key) noexcept;

    /// Owner of the singleton entry for `cls` / the object entry for
    /// (node, oid) — the shard a lookup must be routed to.
    net::NodeId singleton_owner(const std::string& cls) const {
        return owner("S/" + cls);
    }
    net::NodeId object_owner(net::NodeId node, std::uint64_t oid) const {
        return owner("O/" + std::to_string(node) + "/" + std::to_string(oid));
    }

    // ---- shard tables (authoritative control-plane state) ----

    /// Records/overwrites the singleton home for `cls` in its owning
    /// shard's table.
    void put_singleton(const std::string& cls, net::NodeId home,
                       const std::string& protocol);
    /// Looks up a singleton entry; nullptr when never recorded.
    const DirLocation* find_singleton(const std::string& cls) const;

    /// Records that the object formerly at (node, oid) now lives at
    /// (to, new_oid) — one migration hop in the relocation map.
    void put_object(net::NodeId node, std::uint64_t oid, net::NodeId to,
                    std::uint64_t new_oid);
    /// Follows recorded relocation hops from (node, oid) to the terminal
    /// location.  Identity when the object never moved.
    std::pair<net::NodeId, std::uint64_t> chase_object(net::NodeId node,
                                                       std::uint64_t oid) const;

    /// Entries held by each shard owner, in owner order (for gauges and
    /// the shard-balance story).
    void visit_shards(
        const std::function<void(net::NodeId, std::size_t)>& fn) const;
    std::size_t total_entries() const noexcept;

    // ---- per-node resolution caches (soft state) ----

    /// Cached singleton resolution for (asker, cls); nullptr on miss or
    /// when caching is off.
    const DirLocation* cached_singleton(net::NodeId asker,
                                        const std::string& cls) const;
    void cache_singleton(net::NodeId asker, const std::string& cls,
                         const DirLocation& loc);
    /// Drops every per-node cache — migration is a stop-the-world barrier,
    /// so invalidation is global and exact.
    void invalidate_caches();

private:
    std::map<std::string, DirLocation>& table_for(const std::string& key);

    DirectoryPolicy policy_;
    std::vector<net::NodeId> owners_;
    /// Sorted ring points: (hash, shard node).
    std::vector<std::pair<std::uint64_t, net::NodeId>> ring_;
    /// Per-shard-owner export tables: key -> location.
    std::map<net::NodeId, std::map<std::string, DirLocation>> tables_;
    /// Per-node caches: (asker, key) -> location.
    std::map<net::NodeId, std::map<std::string, DirLocation>> caches_;
};

}  // namespace rafda::runtime
