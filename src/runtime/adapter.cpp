#include "runtime/adapter.hpp"

namespace rafda::runtime {

GreedyAdapter::GreedyAdapter(System& system, net::NodeId node, vm::ObjId oid,
                             std::string protocol)
    : system_(&system),
      node_(node),
      oid_(oid),
      protocol_(std::move(protocol)),
      affinity_(node) {}

bool GreedyAdapter::report_phase_cost(std::uint64_t cost) {
    // Move when the last phase failed to improve on the one before it —
    // staying put is only justified while costs are still falling.
    bool stagnant = has_prev_ && cost >= prev_cost_;
    has_prev_ = true;
    prev_cost_ = cost;
    if (!stagnant || node_ == affinity_) return false;
    oid_ = system_->migrate_instance(node_, oid_, affinity_, protocol_);
    node_ = affinity_;
    ++migrations_;
    return true;
}

}  // namespace rafda::runtime
