// Per-node durability: write-ahead log + snapshot (DESIGN.md §20).
//
// A node's durable image is two byte streams of identical record format:
//
//   * the *snapshot* — a checkpoint of the whole node state (heap,
//     statics, initialised classes, singleton registry, imported proxies,
//     reply cache) written as a compact logical replay, and
//   * the *log* — every mutation since that snapshot, appended as it
//     happens.
//
// Records are CRC-framed: `[u32 len][u32 crc32][payload]` with the CRC
// over the payload, and the payload `[u8 kind][varu64 t_us][fields...]`
// stamped with the node's virtual clock at append time.  Recovery replays
// the snapshot and then the log; a torn tail (truncated frame or CRC
// mismatch — the moral equivalent of a crash mid-write) stops replay
// cleanly at the last complete record, applying nothing of the tail.
//
// The WAL never reads clocks, draws randomness, or advances virtual time
// — appends are a pure function of the mutations they record, which is
// what keeps `durable off` byte-identical to the pre-durability build.
#pragma once

#include <cstdint>
#include <string>

#include "net/message.hpp"
#include "obs/metrics.hpp"
#include "support/bytes.hpp"
#include "vm/value.hpp"

namespace rafda::runtime {

/// Durability knobs (policy grammar: `durable on|off [snapshot-interval N]`).
/// Off by default: no observer is installed, no WAL exists, and every
/// legacy experiment byte is untouched.
struct DurabilityPolicy {
    bool enabled = false;
    /// Virtual µs between heap snapshots, checked at request-dispatch
    /// boundaries; each snapshot truncates the log.  0 = never snapshot
    /// (the log grows for the whole run and replay starts from genesis).
    std::uint64_t snapshot_interval_us = 10'000;
};

/// Lifetime accounting for one node's WAL, mirrored into wal.* counters.
struct WalStats {
    std::uint64_t records = 0;    // live-log records appended
    std::uint64_t snapshots = 0;  // checkpoints taken
    std::uint64_t recoveries = 0;
    std::uint64_t replayed = 0;   // records applied across all recoveries
};

/// Decoded-record sink for replay.  Every method defaults to a no-op so
/// implementations (node restore, the migration-by-recovery image
/// builder, tests) override only what they consume.
class WalVisitor {
public:
    virtual ~WalVisitor() = default;
    virtual void on_alloc(std::uint64_t /*t_us*/, const std::string& /*cls*/) {}
    virtual void on_alloc_array(std::uint64_t /*t_us*/,
                                const std::string& /*elem_desc*/,
                                std::uint64_t /*length*/) {}
    virtual void on_field_put(std::uint64_t /*t_us*/, std::uint64_t /*oid*/,
                              std::uint64_t /*slot*/, const vm::Value& /*v*/) {}
    virtual void on_array_put(std::uint64_t /*t_us*/, std::uint64_t /*oid*/,
                              std::uint64_t /*index*/, const vm::Value& /*v*/) {}
    virtual void on_static_put(std::uint64_t /*t_us*/, const std::string& /*cls*/,
                               const std::string& /*field*/, const vm::Value& /*v*/) {}
    virtual void on_class_init(std::uint64_t /*t_us*/, const std::string& /*cls*/) {}
    virtual void on_singleton(std::uint64_t /*t_us*/, const std::string& /*cls*/,
                              std::uint64_t /*oid*/) {}
    virtual void on_singleton_drop(std::uint64_t /*t_us*/,
                                   const std::string& /*cls*/) {}
    virtual void on_proxy_import(std::uint64_t /*t_us*/, std::int32_t /*origin_node*/,
                                 std::uint64_t /*origin_oid*/,
                                 const std::string& /*iface*/,
                                 const std::string& /*protocol*/,
                                 std::uint64_t /*local_oid*/) {}
    virtual void on_reply(std::uint64_t /*t_us*/, std::uint64_t /*request_id*/,
                          const net::CallReply& /*reply*/) {}
    /// A live migration swapped local object `oid` for a proxy to
    /// (`node`, `remote_oid`) of class `proxy_cls`.
    virtual void on_transmute(std::uint64_t /*t_us*/, std::uint64_t /*oid*/,
                              const std::string& /*proxy_cls*/, std::int32_t /*node*/,
                              std::uint64_t /*remote_oid*/) {}
    /// Migration-by-recovery moved local object `oid` to (`node`,
    /// `remote_oid`) while this node was down; replay applies the same
    /// substitution a live migration would have (chained relocations
    /// compose in record order).
    virtual void on_relocate(std::uint64_t /*t_us*/, std::uint64_t /*oid*/,
                             const std::string& /*proxy_cls*/, std::int32_t /*node*/,
                             std::uint64_t /*remote_oid*/) {}
};

class Wal {
public:
    /// Outcome of one stream replay.
    struct ReplayResult {
        std::uint64_t records = 0;  // complete records applied
        std::uint64_t bytes = 0;    // bytes consumed by those records
        /// True when the stream ended exactly on a record boundary; false
        /// means a torn or corrupt tail was rejected (nothing of it was
        /// surfaced to the visitor).
        bool clean = true;
    };

    // -- Live-log appends (one per WalVisitor event) --------------------
    void append_alloc(std::uint64_t t_us, const std::string& cls);
    void append_alloc_array(std::uint64_t t_us, const std::string& elem_desc,
                            std::uint64_t length);
    void append_field_put(std::uint64_t t_us, std::uint64_t oid, std::uint64_t slot,
                          const vm::Value& v);
    void append_array_put(std::uint64_t t_us, std::uint64_t oid, std::uint64_t index,
                          const vm::Value& v);
    void append_static_put(std::uint64_t t_us, const std::string& cls,
                           const std::string& field, const vm::Value& v);
    void append_class_init(std::uint64_t t_us, const std::string& cls);
    void append_singleton(std::uint64_t t_us, const std::string& cls,
                          std::uint64_t oid);
    void append_singleton_drop(std::uint64_t t_us, const std::string& cls);
    void append_proxy_import(std::uint64_t t_us, std::int32_t origin_node,
                             std::uint64_t origin_oid, const std::string& iface,
                             const std::string& protocol, std::uint64_t local_oid);
    void append_reply(std::uint64_t t_us, std::uint64_t request_id,
                      const net::CallReply& reply);
    void append_transmute(std::uint64_t t_us, std::uint64_t oid,
                          const std::string& proxy_cls, std::int32_t node,
                          std::uint64_t remote_oid);
    void append_relocate(std::uint64_t t_us, std::uint64_t oid,
                         const std::string& proxy_cls, std::int32_t node,
                         std::uint64_t remote_oid);

    // -- Snapshot protocol ----------------------------------------------
    /// Redirects subsequent appends into a fresh checkpoint stream; the
    /// caller emits the node's whole state, then commits.  Appends between
    /// begin and commit count as snapshot bytes, not log records.
    void begin_snapshot();
    /// Seals the checkpoint and truncates the log: the durable image is
    /// now (snapshot, empty log).
    void commit_snapshot();

    // -- Recovery -------------------------------------------------------
    /// Replays one framed stream into `v`; stops at the first torn or
    /// corrupt frame.  Static so tests can replay arbitrary byte strings.
    static ReplayResult replay(const Bytes& stream, WalVisitor& v);
    /// Replays the snapshot then the log; updates recovery stats.
    ReplayResult recover(WalVisitor& v);

    const Bytes& log() const noexcept { return log_; }
    const Bytes& snapshot() const noexcept { return snapshot_; }
    /// True when nothing durable has been recorded yet.
    bool empty() const noexcept { return log_.empty() && snapshot_.empty(); }
    const WalStats& stats() const noexcept { return stats_; }

    /// Mirrors appends into system-wide counters (`wal.records`,
    /// `wal.bytes`, `wal.snapshots`).  Null pointers detach.
    void attach_counters(obs::Counter* records, obs::Counter* bytes,
                         obs::Counter* snapshots) {
        records_ctr_ = records;
        bytes_ctr_ = bytes;
        snapshots_ctr_ = snapshots;
    }

    // Test access: install arbitrary (possibly damaged) streams.
    void set_log(Bytes b) { log_ = std::move(b); }
    void set_snapshot(Bytes b) { snapshot_ = std::move(b); }

private:
    enum class Kind : std::uint8_t {
        Alloc = 1,
        AllocArray = 2,
        FieldPut = 3,
        ArrayPut = 4,
        StaticPut = 5,
        ClassInit = 6,
        Singleton = 7,
        SingletonDrop = 8,
        ProxyImport = 9,
        Reply = 10,
        Transmute = 11,
        Relocate = 12,
    };

    /// Frames `payload` (kind + stamp + fields already encoded) with its
    /// length and CRC into the current sink.
    void frame(const Bytes& payload);
    /// Starts a payload: [u8 kind][varu64 t_us].
    static void stamp(ByteWriter& w, Kind kind, std::uint64_t t_us);

    Bytes log_;
    Bytes snapshot_;
    Bytes scratch_;            // checkpoint under construction
    bool in_snapshot_ = false;
    WalStats stats_;
    obs::Counter* records_ctr_ = nullptr;
    obs::Counter* bytes_ctr_ = nullptr;
    obs::Counter* snapshots_ctr_ = nullptr;
};

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over `data`;
/// exposed for tests that hand-build or corrupt frames.
std::uint32_t wal_crc32(const std::uint8_t* data, std::size_t len);

}  // namespace rafda::runtime
