// System — the RAFDA middleware instance: transformed program, nodes,
// simulated network, protocol codecs, distribution policy, and dynamic
// redistribution.
//
// Construction runs the transformation pipeline on the original program
// (adding the prelude and the RemoteFault class first), then nodes are
// added and wired: every node gets policy-driven bindings for each
// A_O_Factory.make / A_C_Factory.discover, and a marshalling dispatcher
// behind every generated proxy class.  Because all code paths go through
// the extracted interfaces, moving an object is a heap transmute plus a
// remote copy — reference holders never notice (Figure 1).
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "net/codec.hpp"
#include "net/network.hpp"
#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/adapt.hpp"
#include "runtime/directory.hpp"
#include "runtime/node.hpp"
#include "runtime/policy.hpp"
#include "runtime/reliable.hpp"
#include "runtime/replica.hpp"
#include "support/pool.hpp"
#include "support/rng.hpp"
#include "transform/pipeline.hpp"

namespace rafda::runtime {

struct SystemOptions {
    transform::PipelineOptions pipeline;
    net::LinkParams default_link;
    std::uint64_t network_seed = 1;
    /// Reliability knobs for the RPC path (defaults = legacy
    /// at-most-once: one attempt, no dedup, no breaker).
    RetryPolicy reliability;
    /// Per-link call batching (default off = per-frame wire schedule).
    BatchPolicy batching;
    /// Bound on materialized per-(class, src, dst) traffic-matrix entries
    /// (each entry is a calls + bytes counter pair).  Beyond the cap new
    /// edges account into the `rpc.class_calls.overflow` /
    /// `rpc.class_bytes.overflow` aggregates instead of materializing —
    /// exact totals, bounded memory at hundreds of nodes.  0 = unbounded.
    std::size_t class_matrix_cap = 1024;
    /// Per-node durability (WAL + snapshots, DESIGN.md §20).  Off by
    /// default: no observer, no log, legacy runs byte-identical.
    DurabilityPolicy durability;
};

/// Per-protocol accounting of remote traffic.
struct RemoteStats {
    std::uint64_t calls = 0;      // Invoke requests sent
    std::uint64_t creates = 0;    // Create requests sent
    std::uint64_t discovers = 0;  // Discover requests sent
    std::uint64_t faults = 0;     // fault replies received
    std::uint64_t drops = 0;      // requests/replies lost in the network
    std::uint64_t request_bytes = 0;
    std::uint64_t reply_bytes = 0;
};

/// Name of the guest throwable raised when the network loses a message.
inline constexpr const char* kRemoteFaultClass = "RemoteFault";

class System {
public:
    /// Transforms `original` (a verified pool; the prelude and RemoteFault
    /// are added to a copy if missing) and prepares an empty node set.
    /// `original` must outlive the System.
    explicit System(const model::ClassPool& original, SystemOptions options = {});
    ~System();

    /// Adds a node; node ids are assigned 0, 1, 2, ...
    Node& add_node();
    Node& node(net::NodeId id);
    std::size_t node_count() const noexcept { return nodes_.size(); }

    net::SimNetwork& network() noexcept { return network_; }
    DistributionPolicy& policy() noexcept { return policy_; }

    /// Enables the sharded object directory (DESIGN.md §18): singleton
    /// discover() and object-relocation lookups route to the shard node
    /// owning the key on a consistent-hash ring instead of resolving
    /// through the host-side policy oracle for free.  Shard owners are the
    /// first `policy.shards` node ids (0 = every node owns a shard); call
    /// after the nodes exist and before driving traffic.  Off by default —
    /// legacy runs stay byte-identical.
    void enable_directory(DirectoryPolicy policy = {});
    ShardedDirectory& directory() noexcept { return directory_; }
    const ShardedDirectory& directory() const noexcept { return directory_; }

    /// Directory-backed object resolution: `asker` queries the shard that
    /// owns (node, oid)'s relocation entry (a control round-trip in
    /// virtual time unless asker owns the shard) and receives the terminal
    /// location recorded by past migrations.  The directory analogue of
    /// resolve_terminal, which walks the actual proxy chain instead.
    std::pair<net::NodeId, vm::ObjId> directory_resolve(net::NodeId asker,
                                                        net::NodeId node,
                                                        vm::ObjId oid);

    /// The process-wide measurement substrate: every counter the runtime,
    /// network and VMs maintain lives here (DESIGN.md "Observability").
    obs::Registry& metrics() noexcept { return metrics_; }
    const obs::Registry& metrics() const noexcept { return metrics_; }

    /// Span tracer for cross-node RPC traces.  Disabled by default; enable
    /// with `tracer().set_enabled(true)` before driving traffic.
    obs::Tracer& tracer() noexcept { return tracer_; }
    const obs::Tracer& tracer() const noexcept { return tracer_; }

    /// Flight recorder (DESIGN.md §16): a bounded ring of virtual-time-
    /// stamped events covering the RPC lifecycle, retries, breaker
    /// transitions, fault-window edges, dedup hits and migrations.
    /// Disabled by default; enable with `journal().set_enabled(true)`.
    /// Recording is passive — enabling it cannot perturb a seeded run.
    obs::Journal& journal() noexcept { return journal_; }
    const obs::Journal& journal() const noexcept { return journal_; }

    /// Closed-loop adaptation (DESIGN.md §19): installs the
    /// AdaptationEngine with `policy` (enabled is forced on).  The
    /// WorkloadDriver schedules its ticks as EventHeap events; outside a
    /// driver, call adaptation_tick() at whatever cadence suits — the
    /// engine gates itself on the policy interval.  Off by default: a run
    /// that never calls this is byte-identical to one built before the
    /// engine existed.
    void enable_adaptation(AdaptPolicy policy = {});
    bool adaptation_enabled() const noexcept { return adapt_ != nullptr; }
    AdaptationEngine* adaptation() noexcept { return adapt_.get(); }
    const AdaptationEngine* adaptation() const noexcept { return adapt_.get(); }
    /// One controller tick at the current watermark (interval-gated unless
    /// `force`); no-op when adaptation is off.  Returns true if it ran.
    bool adaptation_tick(bool force = false);
    /// Backfills realized savings for still-pending decisions (the driver
    /// calls this once after the workload drains).
    void adaptation_finalize();

    /// Durability (DESIGN.md §20): every node — present and future — gets
    /// a write-ahead log with periodic snapshots, the wal.* counters are
    /// registered, and the fault plan's restart seam is armed, so a
    /// crashed node recovers its pre-crash heap and reply cache on
    /// restart instead of shedding them (exactly-once becomes durable).
    /// `enabled` is forced on.  Off by default: a run that never calls
    /// this is byte-identical to one built before the WAL existed.
    void enable_durability(DurabilityPolicy policy = {});
    bool durability_enabled() const noexcept { return durability_.enabled; }
    const DurabilityPolicy& durability() const noexcept { return durability_; }

    /// Pull-based restart sweep for drivers (no-op when durability is
    /// off): notifies every node of crash windows that ended by the
    /// watermark, so a node recovers promptly even when no request lands
    /// on it (the RPC path only detects restarts on arrival).
    void observe_restarts();

    /// Journals a completed node recovery and bumps wal.recoveries /
    /// wal.replayed_records; called by Node after a WAL replay.
    void note_recovery(net::NodeId node, const Wal::ReplayResult& res,
                       std::uint64_t t_us);

    /// Migration-by-recovery (DESIGN.md §20): rebuilds crashed node
    /// `crashed`'s durable image — every heap object, its singleton
    /// registry and its reply cache — onto live node `target`, repoints
    /// directory shards and live proxies, and appends Relocate records to
    /// the crashed node's own WAL so its eventual restart transmutes the
    /// moved slots into proxies (chained relocations preserved).  Gives
    /// the adaptation engine a defer-free path around crash windows.
    /// Idempotent per crash: if the image was already relocated since the
    /// node's last restart, nothing is re-materialized (0 is returned);
    /// relocation_of() says where everything went.  Returns the number of
    /// objects restored.
    std::size_t recover_node_onto(net::NodeId crashed, net::NodeId target,
                                  const std::string& protocol = "");

    /// Outcome of the last migration-by-recovery for a crashed node.
    struct Relocation {
        net::NodeId target = -1;
        /// Old oid on the crashed node -> new oid on `target`.
        std::map<vm::ObjId, vm::ObjId> remap;
    };
    /// Non-null while `crashed`'s image has been relocated and the node
    /// has not yet restarted (a restart replays the Relocate records and
    /// clears this — the node is then a live forwarder again).
    const Relocation* relocation_of(net::NodeId crashed) const {
        const auto it = relocations_.find(crashed);
        return it == relocations_.end() ? nullptr : &it->second;
    }

    /// Actual home of the instantiated `cls` singleton: scans the node
    /// set for its C_Local instance.  {-1, 0} when never discovered.
    std::pair<net::NodeId, vm::ObjId> find_singleton(const std::string& cls);

    /// Installs a node-local read replica of the object at (primary, oid)
    /// — original class `cls` — on `reader`: state is marshalled and
    /// charged as a real transfer primary -> reader, then materialized as
    /// a copy the dispatch path serves read-only methods from
    /// (DESIGN.md §19).  Unlike migration this is not a barrier: only the
    /// reader's clock reconciles.  Returns the copy's object id.
    vm::ObjId create_replica(net::NodeId primary, vm::ObjId oid,
                             const std::string& cls, net::NodeId reader);

    /// Replication state (inspectable; mutate via create_replica and the
    /// write-invalidate path, not directly).
    ReplicaManager& replicas() noexcept { return replicas_; }
    const ReplicaManager& replicas() const noexcept { return replicas_; }

    /// Turns per-method instruction histograms on/off in every node's VM
    /// (`vm.node<N>.method_instr.<Cls>.<method>`); applies to nodes added
    /// later too.
    void enable_method_profiling(bool on = true);

    const transform::TransformReport& report() const noexcept { return result_.report; }
    const model::ClassPool& transformed_pool() const noexcept { return result_.pool; }
    const model::ClassPool& original_pool() const noexcept { return *original_; }

    /// Calls an original static entry point on `node` through the
    /// transformed program (discover + interface call).
    vm::Value call_static(net::NodeId node, const std::string& cls,
                          const std::string& method, const std::string& desc,
                          std::vector<vm::Value> args = {});

    /// Constructs an instance of original class `cls` on `node` through the
    /// factory seam (make + init); returns the guest reference on `node`.
    vm::Value construct(net::NodeId node, const std::string& cls,
                        const std::string& ctor_desc, std::vector<vm::Value> args = {});

    /// Moves the object `oid` (which must be an A_O_Local on `from`) to
    /// node `to`; the vacated heap slot becomes a proxy so every existing
    /// reference — local and remote — now reaches the moved object.
    /// Returns the object id on `to`.
    vm::ObjId migrate_instance(net::NodeId from, vm::ObjId oid, net::NodeId to,
                               const std::string& protocol = "");

    /// Moves the static-members singleton of `cls` from its current home to
    /// node `to` and updates the policy so future discover() calls go there.
    void migrate_singleton(const std::string& cls, net::NodeId to,
                           const std::string& protocol = "");

    /// Moves the object at (from, oid) together with every local
    /// implementation object reachable from it through reference fields on
    /// `from` (the transitive closure stops at proxies and at non-local
    /// values).  Chatty object clusters migrate as one unit instead of
    /// leaving a web of cross-node references.  Returns the number of
    /// objects moved.
    std::size_t migrate_closure(net::NodeId from, vm::ObjId oid, net::NodeId to,
                                const std::string& protocol = "");

    /// Follows the proxy chain starting at (node, oid) — as left behind by
    /// repeated migrations — to the terminal implementation object.
    /// Returns {node, oid}; identity if the slot holds a local object.
    std::pair<net::NodeId, vm::ObjId> resolve_terminal(net::NodeId node, vm::ObjId oid);

    /// Re-points the proxy at (node, oid) directly at its terminal
    /// location, collapsing the forwarding chain (a control-plane
    /// optimisation; E2 measures the chains it removes).  Returns the
    /// number of hops eliminated (0 if already direct or not a proxy).
    int shorten_chain(net::NodeId node, vm::ObjId oid);

    /// Per-protocol traffic view, rebuilt on each call from the metrics
    /// registry (`rpc.proto.<proto>.*`).  Protocols with no recorded
    /// traffic are omitted, so emptiness means "no RPC attempted".
    const std::map<std::string, RemoteStats>& remote_stats() const;

    /// Remote Invoke counts per original class, keyed by (calling node,
    /// target node): the raw signal a placement decision needs ("who talks
    /// to whom, and where does the callee live").
    struct ClassTraffic {
        std::map<std::pair<net::NodeId, net::NodeId>, std::uint64_t> calls;
        /// Wire bytes (requests + replies, retries included) per edge,
        /// from the `rpc.class_bytes.<cls>.<src>.<dst>` counters.
        std::map<std::pair<net::NodeId, net::NodeId>, std::uint64_t> bytes;
        std::uint64_t total() const {
            std::uint64_t n = 0;
            for (const auto& [_, c] : calls) n += c;
            return n;
        }
        std::uint64_t total_bytes() const {
            std::uint64_t n = 0;
            for (const auto& [_, c] : bytes) n += c;
            return n;
        }
    };
    /// View over the `rpc.class_calls.<cls>.<src>.<dst>` (and matching
    /// class_bytes) registry counters, rebuilt on each call; all-zero
    /// edges are omitted.
    const std::map<std::string, ClassTraffic>& class_traffic() const;
    std::uint64_t migrations() const noexcept;
    void reset_stats();

    // ---- internal plumbing used by Node and the proxy dispatcher ----

    /// Marker thrown (C++-level) when the simulated network drops a
    /// message; converted to a guest RemoteFault at the proxy boundary.
    ///
    /// RPC here is at-most-once, and the two loss points are not
    /// equivalent: a lost *request* never executed, a lost *reply* means
    /// the remote side already ran the call and only the result vanished.
    /// `executed_remotely` distinguishes them so callers can reason about
    /// side effects (retrying a create after a reply loss leaks an
    /// instance; retrying after a request loss does not).  See DESIGN.md
    /// §12.
    struct Dropped {
        std::string what;
        bool executed_remotely = false;
        /// True when no attempt touched the wire: an open circuit breaker
        /// or a known-crashed destination rejected the call immediately.
        bool fast_fail = false;
    };

    /// One reliable logical call: encodes, transfers, decodes, dispatches
    /// and returns the reply, retrying per `reliability()` — deadline in
    /// virtual time, exponential backoff with seeded jitter, retry budget,
    /// circuit breaker — with the request id as the idempotency key for
    /// the callee's reply cache.  Stamps the tracer's current trace/span
    /// into `req`'s wire header so the remote dispatch span parents
    /// correctly.  Throws Dropped once the policy gives up (with the
    /// default policy that is on the first loss, exactly the legacy
    /// at-most-once behaviour).
    net::CallReply rpc(net::NodeId src, net::NodeId dst, const std::string& protocol,
                       net::CallRequest& req);

    /// The active reliability policy; mutate before driving traffic.
    RetryPolicy& reliability() noexcept { return reliability_; }
    const RetryPolicy& reliability() const noexcept { return reliability_; }

    /// The active batching policy (DESIGN.md §17); mutate before driving
    /// traffic.  Off by default — the wire schedule is then exactly the
    /// per-frame behaviour, byte for byte.
    BatchPolicy& batching() noexcept { return batching_; }
    const BatchPolicy& batching() const noexcept { return batching_; }

    /// The pooled message-buffer arena the RPC path encodes into; exposed
    /// for tests and the rpc.pool.* probes.
    const support::BufferPool& buffer_pool() const noexcept { return buffer_pool_; }

    /// Per-(destination node, protocol) breaker traversal in key order,
    /// for `rafdac faults` and tests.
    void visit_breakers(const std::function<void(
                            net::NodeId, const std::string&, const CircuitBreaker&)>& fn) const;

    /// Bumped by Node when its reply cache answers a retried request; the
    /// (request id, node, time) triple also lands in the journal so the
    /// timeline shows *which* retry was absorbed.
    void note_dedup_hit(std::uint64_t request_id, net::NodeId node,
                        std::uint64_t t_us) {
        rpc_dedup_hits_->add();
        if (journal_.enabled())
            journal_.record(obs::JournalEvent::Kind::DedupHit, t_us, node, -1,
                            request_id, 0, {});
    }
    /// Bumped by Node when it refuses an expired request.
    void note_server_timeout(std::uint64_t request_id, net::NodeId node,
                             std::uint64_t t_us) {
        rpc_timeouts_->add();
        if (journal_.enabled())
            journal_.record(obs::JournalEvent::Kind::RpcTimeout, t_us, node, -1,
                            request_id, 0, "server");
    }

    net::Codec& codec(const std::string& protocol);

private:
    /// Cached registry handles for one protocol's `rpc.proto.<proto>.*`
    /// metrics — resolved once, bumped through pointers on the hot path.
    struct ProtoMetrics {
        obs::Counter* calls = nullptr;
        obs::Counter* creates = nullptr;
        obs::Counter* discovers = nullptr;
        obs::Counter* faults = nullptr;
        obs::Counter* drops = nullptr;
        obs::Counter* request_bytes = nullptr;
        obs::Counter* reply_bytes = nullptr;
        obs::Histogram* request_size = nullptr;
        obs::Histogram* reply_size = nullptr;
    };
    ProtoMetrics& proto_metrics(const std::string& protocol);

    /// Resolves the {calls, bytes} counter pair for one traffic-matrix
    /// edge, enforcing SystemOptions::class_matrix_cap: the first `cap`
    /// distinct (class, src, dst) edges materialize named counters, later
    /// ones account into the overflow aggregates (nothing is dropped —
    /// `rpc.class_matrix.overflow_entries` counts redirected resolutions).
    std::pair<obs::Counter*, obs::Counter*> matrix_counters(
        const std::string& cls, net::NodeId src, net::NodeId dst);

    /// Singleton placement via the directory: per-node cache, then a
    /// control round-trip to the owning shard (first demand materializes
    /// the entry from the policy's initial assignment).
    Placement directory_discover(const std::string& cls, net::NodeId asker);
    /// Charges one lookup round-trip asker -> owner -> asker on the
    /// simulated network plus the shard's lookup CPU.  The control channel
    /// is modelled reliable (like migration): loss costs time, never the
    /// outcome.
    void directory_control_trip(net::NodeId asker, net::NodeId owner);

    void wire_node(Node& node);
    std::uint64_t next_request_id() { return ++request_counter_; }

    /// One wire round-trip (the legacy rpc body): no retries, no breaker.
    net::CallReply rpc_attempt(net::NodeId src, net::NodeId dst,
                               const std::string& protocol, net::CallRequest& req,
                               ProtoMetrics& pm);
    CircuitBreaker& breaker(net::NodeId dst, const std::string& protocol);

    /// Journal edge detection for node-crash windows: records a FaultEdge
    /// (peer=-1) when `down` differs from the last observation for `dst`.
    void note_node_fault(net::NodeId dst, bool down, std::uint64_t t_us);

    /// Write-invalidate (DESIGN.md §19): marks every copy of the primary
    /// stale and charges one control message per freshly invalidated copy
    /// — through the owning directory shard when the directory is on,
    /// directly otherwise.  Already-stale copies cost nothing.
    void invalidate_replicas(net::NodeId primary, vm::ObjId oid,
                             const std::string& cls);
    /// Re-copies the primary's state into a stale replica (charged as a
    /// primary -> reader transfer) and marks it valid.
    void refresh_replica(const std::string& cls, net::NodeId primary,
                         vm::ObjId oid, Replica& r);
    /// Local singleton access the dispatch seam cannot see: counted for
    /// the engine's replication gate, and conservatively invalidates any
    /// replicas whose primary lives on `node_id` (the local caller may be
    /// about to write through its raw reference).
    void note_local_discover(const std::string& cls, net::NodeId node_id);
    void ensure_replica_counters();

    // The registry, tracer and journal are declared first so they outlive
    // the nodes (interpreter destructors deregister their probes) and the
    // network (which holds cached counter and journal handles).
    obs::Registry metrics_;
    obs::Tracer tracer_;
    obs::Journal journal_;
    const model::ClassPool* original_;
    model::ClassPool prepared_;  // original + prelude + RemoteFault
    transform::PipelineResult result_;
    net::SimNetwork network_;
    DistributionPolicy policy_;
    ShardedDirectory directory_;
    obs::Counter* dir_lookups_ = nullptr;
    obs::Counter* dir_remote_ = nullptr;
    obs::Counter* dir_cache_hits_ = nullptr;
    obs::Counter* dir_updates_ = nullptr;
    obs::Gauge* dir_entries_ = nullptr;
    /// Materialized traffic-matrix edges (bounded by class_matrix_cap, so
    /// this set is itself bounded) and the overflow aggregates beyond it.
    std::set<std::string> matrix_keys_;
    obs::Counter* matrix_calls_overflow_ = nullptr;
    obs::Counter* matrix_bytes_overflow_ = nullptr;
    obs::Counter* matrix_overflow_entries_ = nullptr;
    std::vector<std::unique_ptr<Node>> nodes_;
    std::map<std::string, std::unique_ptr<net::Codec>> codecs_;
    std::map<std::string, ProtoMetrics> proto_metrics_;
    obs::Counter* migrations_counter_ = nullptr;
    obs::Counter* migration_bytes_counter_ = nullptr;
    obs::Counter* chain_shortenings_counter_ = nullptr;
    obs::Counter* chain_hops_removed_counter_ = nullptr;
    // Lazily rebuilt compatibility views over the registry; cached so the
    // accessors can keep their historical const-reference return types.
    mutable std::map<std::string, RemoteStats> remote_stats_view_;
    mutable std::map<std::string, ClassTraffic> class_traffic_view_;
    std::uint64_t request_counter_ = 0;
    bool method_profiling_ = false;
    RetryPolicy reliability_;
    BatchPolicy batching_;
    std::size_t class_matrix_cap_ = 1024;
    /// Per-directed-link batch lane: what frame last occupied the link
    /// and whether a same-protocol request may still append to it.  The
    /// decode side reuses the recorded BatchContext, modelling the
    /// receiver having seen the frame open.
    struct BatchLane {
        std::string protocol;
        net::BatchContext ctx;
        std::uint32_t entries = 0;  // continuation entries appended so far
        bool joinable = false;
    };
    std::map<std::pair<net::NodeId, net::NodeId>, BatchLane> batch_lanes_;
    /// Message-buffer arena for the RPC hot path (request + reply frames
    /// encode straight into pooled storage; DESIGN.md §17).
    support::BufferPool buffer_pool_;
    obs::Counter* batch_frames_ = nullptr;
    obs::Counter* batch_coalesced_ = nullptr;
    obs::Counter* batch_entry_bytes_ = nullptr;
    obs::Counter* batch_latency_saved_us_ = nullptr;
    std::map<std::pair<net::NodeId, std::string>, CircuitBreaker> breakers_;
    /// Last observed node-crash state per destination (journal edge
    /// detection only, mirroring SimNetwork::fault_seen_ for links).
    std::map<net::NodeId, bool> node_fault_seen_;
    /// Jitter draws come from their own stream (not the network's), so a
    /// retry schedule can never perturb drop decisions — and vice versa.
    Rng retry_jitter_rng_;
    std::uint64_t retries_spent_ = 0;  // against RetryPolicy::retry_budget
    /// Closed-loop adaptation (DESIGN.md §19).  The engine is only
    /// constructed by enable_adaptation(); the replica registry is always
    /// present but costs one empty-map check until the first replica.
    std::unique_ptr<AdaptationEngine> adapt_;
    ReplicaManager replicas_;
    obs::Counter* adapt_invalidations_ = nullptr;
    obs::Counter* adapt_replica_reads_ = nullptr;
    obs::Counter* adapt_replica_refreshes_ = nullptr;
    obs::Counter* rpc_retries_ = nullptr;
    obs::Counter* rpc_retries_reply_loss_ = nullptr;
    obs::Counter* rpc_timeouts_ = nullptr;
    obs::Counter* rpc_dedup_hits_ = nullptr;
    obs::Counter* rpc_breaker_open_ = nullptr;
    /// Durability (DESIGN.md §20).  Counters exist only once
    /// enable_durability ran — the off state registers nothing.
    DurabilityPolicy durability_;
    /// Migration-by-recovery bookkeeping: crashed node -> where its image
    /// went.  Entries die when the node itself restarts (note_recovery).
    std::map<net::NodeId, Relocation> relocations_;
    obs::Counter* wal_records_ = nullptr;
    obs::Counter* wal_bytes_ = nullptr;
    obs::Counter* wal_snapshots_ = nullptr;
    obs::Counter* wal_recoveries_ = nullptr;
    obs::Counter* wal_replayed_ = nullptr;
    obs::Counter* wal_relocated_ = nullptr;
};

}  // namespace rafda::runtime
