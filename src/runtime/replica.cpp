#include "runtime/replica.hpp"

#include <algorithm>

#include "model/classfile.hpp"
#include "model/classpool.hpp"
#include "model/instr.hpp"

namespace rafda::runtime {

namespace {

/// True when the field table of `cf` declares `field` (any staticness —
/// the generated accessors cover both families).
bool has_field(const model::ClassFile& cf, std::string_view field) {
    for (const model::Field& f : cf.fields)
        if (f.name == field) return true;
    return false;
}

}  // namespace

bool ReplicaManager::method_is_readonly(const std::string& cls,
                                        const std::string& method) const {
    const std::string key = cls + "." + method;
    auto it = readonly_cache_.find(key);
    if (it != readonly_cache_.end()) return it->second;
    std::vector<std::string> in_progress;
    const bool ro = method_is_readonly_rec(cls, method, in_progress);
    readonly_cache_[key] = ro;
    return ro;
}

bool ReplicaManager::method_is_readonly_rec(
    const std::string& cls, const std::string& method,
    std::vector<std::string>& in_progress) const {
    if (!pool_) return false;
    const model::ClassFile* cf = pool_->find(cls);
    if (!cf) return false;

    const auto bodies = cf->methods_named(method);
    if (bodies.empty()) {
        // Generated property accessors never exist on the original class;
        // classify them by prefix against the original field table.
        if (method.rfind("get_", 0) == 0 && has_field(*cf, method.substr(4)))
            return true;
        return false;  // set_f, get_me, and anything else unknown: a write
    }

    // Cycle guard: a recursive method under classification is assumed
    // read-only; any write on the cycle is caught by the frame that sees
    // the offending instruction.
    const std::string key = cls + "." + method;
    if (std::find(in_progress.begin(), in_progress.end(), key) != in_progress.end())
        return true;
    in_progress.push_back(key);

    bool ro = true;
    for (const model::Method* m : bodies) {
        if (m->is_native || m->is_abstract) {
            ro = false;
            break;
        }
        for (const model::Instruction& ins : m->code.instrs) {
            switch (ins.op) {
                case model::Op::PutField:
                case model::Op::PutStatic:
                case model::Op::AStore:
                case model::Op::New:
                case model::Op::NewArray:
                case model::Op::Throw:
                    ro = false;
                    break;
                case model::Op::InvokeVirtual:
                case model::Op::InvokeInterface:
                case model::Op::InvokeStatic:
                case model::Op::InvokeSpecial:
                    // Only same-class calls can stay inside the replica's
                    // state; anything else might touch the world.
                    if (ins.owner != cls ||
                        !method_is_readonly_rec(cls, ins.member, in_progress))
                        ro = false;
                    break;
                default:
                    break;  // loads, arithmetic, control flow, reads: fine
            }
            if (!ro) break;
        }
        if (!ro) break;
    }
    in_progress.pop_back();
    return ro;
}

void ReplicaManager::put(net::NodeId primary_node, std::uint64_t primary_oid,
                         const std::string& cls, Replica r) {
    Entry& e = entries_[{primary_node, primary_oid}];
    e.cls = cls;
    e.copies[r.node] = r;
}

Replica* ReplicaManager::find(net::NodeId primary_node, std::uint64_t primary_oid,
                              net::NodeId reader) {
    auto it = entries_.find({primary_node, primary_oid});
    if (it == entries_.end()) return nullptr;
    auto cit = it->second.copies.find(reader);
    return cit == it->second.copies.end() ? nullptr : &cit->second;
}

std::vector<Replica*> ReplicaManager::invalidate(net::NodeId primary_node,
                                                 std::uint64_t primary_oid) {
    std::vector<Replica*> flipped;
    auto it = entries_.find({primary_node, primary_oid});
    if (it == entries_.end()) return flipped;
    for (auto& [_, r] : it->second.copies) {
        if (!r.valid) continue;
        r.valid = false;
        flipped.push_back(&r);
    }
    return flipped;
}

void ReplicaManager::drop_primary(net::NodeId primary_node,
                                  std::uint64_t primary_oid) {
    entries_.erase({primary_node, primary_oid});
}

std::vector<std::pair<net::NodeId, std::uint64_t>>
ReplicaManager::primaries_of_class(const std::string& cls) const {
    std::vector<std::pair<net::NodeId, std::uint64_t>> out;
    for (const auto& [key, e] : entries_)
        if (e.cls == cls) out.push_back(key);
    return out;
}

void ReplicaManager::visit(
    net::NodeId primary_node, std::uint64_t primary_oid,
    const std::function<void(const Replica&)>& fn) const {
    auto it = entries_.find({primary_node, primary_oid});
    if (it == entries_.end()) return;
    for (const auto& [_, r] : it->second.copies) fn(r);
}

std::size_t ReplicaManager::total_replicas() const noexcept {
    std::size_t n = 0;
    for (const auto& [_, e] : entries_) n += e.copies.size();
    return n;
}

}  // namespace rafda::runtime
