// Node — one simulated address space: a VM plus the marshalling layer.
//
// Nodes share the (immutable) transformed class pool but have disjoint
// heaps and static storage.  A node can:
//   * export a value: references to its local implementation objects become
//     (node, oid, interface) remote references; proxies it holds are
//     re-exported with *their* target, so references travel transitively;
//   * import a value: a remote reference becomes a generated proxy object
//     (deduplicated per (node, oid, interface, protocol));
//   * service requests: Invoke / Create / Discover, converting guest
//     exceptions into fault replies.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <tuple>

#include "net/message.hpp"
#include "net/network.hpp"
#include "runtime/wal.hpp"
#include "vm/interp.hpp"
#include "vm/observer.hpp"

namespace rafda::runtime {

class System;

class Node : private vm::MutationObserver {
public:
    Node(System& system, net::NodeId id, const model::ClassPool& pool);
    Node(const Node&) = delete;
    Node& operator=(const Node&) = delete;

    net::NodeId id() const noexcept { return id_; }
    vm::Interpreter& interp() noexcept { return interp_; }
    const vm::Interpreter& interp() const noexcept { return interp_; }

    /// This node's virtual clock (µs): the earliest instant it can start
    /// new work.  Local work (codec CPU, dispatch) advances it; message
    /// arrivals reconcile it at the RPC join points, so concurrent clients
    /// overlap in virtual time while one sequential caller reduces to the
    /// old global clock (DESIGN.md §13).
    std::uint64_t clock_us() const noexcept { return clock_us_; }
    /// Charges `us` of local work on this node's clock.
    void advance_clock(std::uint64_t us);
    /// Clock reconciliation: pulls the clock up to event time `t` (a
    /// message arrival); never moves it backwards.
    void reconcile_clock(std::uint64_t t);
    /// Pulls the guest-visible logical time (Sys.time) up to the clock.
    void sync_guest_time();

    /// Pipeline mode (DESIGN.md §17): while on, this node streams its
    /// remote calls — successful reply arrivals are folded into a pending
    /// horizon (reconcile_reply) instead of stalling the clock, so the
    /// next request departs while the link still carries the previous one
    /// (which is what lets the batching layer coalesce).  Turning the
    /// mode off drains the horizon: the clock catches up to the latest
    /// reply arrival, restoring ordinary call-and-wait semantics.
    /// Failure paths always reconcile immediately, so retries, deadlines
    /// and exactly-once behave identically per logical call.
    void set_pipeline(bool on);
    bool pipeline() const noexcept { return pipeline_; }
    /// Success-path reply join point: defers into the pipeline horizon
    /// when pipeline mode is on, otherwise reconciles immediately.
    void reconcile_reply(std::uint64_t t);

    /// Services one decoded request arriving over `protocol`.  When the
    /// system's reliability policy enables dedup, the request id is an
    /// idempotency key: a retry of an already-executed request replays the
    /// cached reply instead of re-executing (exactly-once, DESIGN.md §15).
    /// Expired requests (deadline_us in the past at arrival) are refused
    /// with a RemoteFault reply before any guest code runs.
    net::CallReply handle_request(const net::CallRequest& req, const std::string& protocol);

    /// Crash/restart bookkeeping: `restarts` is the number of NodeCrash
    /// windows for this node that have ended so far.  With durability off
    /// a newly observed restart sheds the node's soft state — the reply
    /// cache — which is what makes post-crash dedup a best-effort
    /// guarantee (the heap and singletons are modelled as durable; see
    /// DESIGN.md §15).  With durability on the whole VM is wiped and
    /// rebuilt from the snapshot + WAL, reply cache included, so dedup
    /// survives the crash (DESIGN.md §20).
    void apply_restarts(std::uint64_t restarts);

    /// Turns on the durability layer (DESIGN.md §20): creates this node's
    /// WAL, installs the VM mutation observer so every heap and static
    /// mutation is journalled, and arms snapshotting at `policy`'s
    /// interval.  Off (the default) leaves every legacy code path — and
    /// every legacy experiment byte — untouched.
    void enable_durability(const DurabilityPolicy& policy);
    bool durable() const noexcept { return wal_ != nullptr; }
    Wal* wal() noexcept { return wal_.get(); }
    const Wal* wal() const noexcept { return wal_.get(); }

    /// Writes a fresh checkpoint of the node's entire state (heap,
    /// statics, initialised classes, singletons, imported proxies, reply
    /// cache) and truncates the log.  No-op when durability is off.
    void take_snapshot();

    /// Guest value -> wire value.  Throws RuntimeError for references to
    /// objects that have no generated family (non-substitutable classes).
    net::MarshalledValue export_value(const vm::Value& v);

    /// Wire value -> guest value; remote references become proxies speaking
    /// `protocol`.
    vm::Value import_value(const net::MarshalledValue& m, const std::string& protocol);

    /// Returns a guest reference to (node, oid) seen through `iface`
    /// ("X_O_Int"/"X_C_Int"): the raw object when local, a deduplicated
    /// proxy otherwise.
    vm::Value import_ref(net::NodeId node, std::uint64_t oid, const std::string& iface,
                         const std::string& protocol);

    /// Local singleton bookkeeping for Discover handling; creates the
    /// singleton and runs clinit on first use.
    vm::Value local_singleton(const std::string& cls);

    /// Raises a guest RemoteFault carrying `msg`.
    [[noreturn]] void throw_remote_fault(const std::string& msg);

    /// Re-raises a fault reply as a guest exception of the original class
    /// (falls back to Throwable when the class cannot be constructed).
    [[noreturn]] void rethrow_fault(const net::CallReply& reply);

private:
    friend class System;
    friend struct NodeRecovery;  // WalVisitor applying replayed records

    /// Publishes a clock change: mirrors the runtime.node<N>.clock_us
    /// gauge and advances the network's global watermark.
    void clock_changed();

    // vm::MutationObserver — journals guest mutations into the WAL,
    // stamped with this node's virtual clock (stamps are informational;
    // replay never reads them back into the clock).
    void on_alloc(vm::ObjId id, const std::string& cls) override;
    void on_alloc_array(vm::ObjId id, const std::string& elem_desc,
                        std::size_t length) override;
    void on_field_put(vm::ObjId id, std::size_t slot, const vm::Value& v) override;
    void on_array_put(vm::ObjId id, std::size_t index, const vm::Value& v) override;
    void on_static_put(const std::string& cls, const std::string& field,
                       const vm::Value& v) override;
    void on_class_init(const std::string& cls) override;

    /// Bounded FIFO insert into the reply cache (shared by handle_request
    /// and WAL replay); appends a Reply record when `journal` is set and
    /// durability is on.
    void cache_reply(std::uint64_t request_id, const net::CallReply& reply,
                     bool journal);
    /// Snapshot-interval check, called at request-dispatch boundaries
    /// (a clean point: no guest frame is live).
    void maybe_snapshot();
    /// Durable restart: wipes the VM and node state, then replays the
    /// snapshot and log to reconstruct the pre-crash image.
    void recover_from_wal();

    System* system_;
    net::NodeId id_;
    vm::Interpreter interp_;
    std::uint64_t clock_us_ = 0;
    obs::Gauge* clock_gauge_ = nullptr;  // set when System wires the node
    /// (origin node, origin oid, interface, protocol) -> local proxy object.
    std::map<std::tuple<net::NodeId, std::uint64_t, std::string, std::string>, vm::ObjId>
        imported_;
    std::map<std::string, vm::ObjId> singletons_;
    /// Bounded request-id → reply cache (FIFO eviction at the policy's
    /// dedup_capacity); populated only while dedup is enabled.
    std::map<std::uint64_t, net::CallReply> reply_cache_;
    std::deque<std::uint64_t> reply_cache_order_;
    std::uint64_t restarts_seen_ = 0;
    /// Pipeline mode: deferred success-path reply horizon (max arrival
    /// seen since the mode was turned on; drained by set_pipeline(false)).
    bool pipeline_ = false;
    std::uint64_t pipeline_horizon_us_ = 0;
    /// Durability layer (null = off; DESIGN.md §20).
    std::unique_ptr<Wal> wal_;
    DurabilityPolicy durability_;
    std::uint64_t last_snapshot_us_ = 0;
};

}  // namespace rafda::runtime
