// Distribution policy — "Policy dictates which classes are substitutable
// and which proxy implementations are used" (paper Sec 1).
//
// The policy answers the two questions the factory seams ask at runtime:
//   * make():     where should a new instance of class A live when code on
//                 node n creates one, and over which protocol should n talk
//                 to it if that is not n itself?
//   * discover(): where does the singleton holding A's static members live?
//
// It is deliberately mutable: changing it (and/or migrating existing
// objects) is how the deployed application "adapts to its environment by
// dynamically altering its distribution boundaries".
#pragma once

#include <map>
#include <string>

#include "net/network.hpp"

namespace rafda::runtime {

struct Placement {
    net::NodeId node = 0;
    std::string protocol = "RMI";

    bool operator==(const Placement&) const = default;
};

class DistributionPolicy {
public:
    /// Protocol used when a placement does not name one.
    void set_default_protocol(std::string protocol);
    const std::string& default_protocol() const noexcept { return default_protocol_; }

    /// Instances of `cls` are created on `node` (empty protocol = default).
    void set_instance_home(const std::string& cls, net::NodeId node,
                           std::string protocol = "");
    /// Back to the default: instances live where they are created.
    void clear_instance_home(const std::string& cls);

    /// The singleton for `cls`'s static members lives on `node`.
    void set_singleton_home(const std::string& cls, net::NodeId node,
                            std::string protocol = "");
    void clear_singleton_home(const std::string& cls);

    /// Where an instance of `cls` created by code on `creating_node` lives.
    /// Default: on the creating node itself.
    Placement instance_placement(const std::string& cls, net::NodeId creating_node) const;

    /// Where `cls`'s singleton lives.  Default: node 0, so static state
    /// stays unique across the system even with no explicit policy.
    Placement singleton_placement(const std::string& cls, net::NodeId asking_node) const;

private:
    struct Home {
        net::NodeId node = 0;
        std::string protocol;  // empty = default
    };

    std::string resolved(const std::string& protocol) const {
        return protocol.empty() ? default_protocol_ : protocol;
    }

    std::string default_protocol_ = "RMI";
    std::map<std::string, Home> instance_homes_;
    std::map<std::string, Home> singleton_homes_;
};

}  // namespace rafda::runtime
