// WorkloadDriver — a concurrent multi-client workload generator.
//
// The RAFDA follow-up papers frame the runtime as a *server* mediating
// many concurrent clients; this driver makes that workload expressible in
// the simulator.  Each client is a node with its own interpreter and heap,
// so a top-level guest invocation runs to completion as ordinary nested
// C++ (no coroutines needed) — concurrency exists purely in *virtual
// time*: per-node clocks advance independently, and contention appears
// exactly where the event-sequenced model says it must — on shared links
// (channel occupancy queues contending transfers) and on the server
// node's clock (requests arriving while it is busy wait their turn).
//
// The driver interleaves the clients' invocation queues round-robin, one
// invocation per client per round, which fixes the event order and makes
// runs bit-for-bit reproducible from the network seed.  The resulting
// makespan is the span between the earliest client start clock and the
// latest client completion clock; with N clients against one server it
// must beat N× the single-client time, because only the server-side work
// serializes (measured by bench_concurrency / E9, DESIGN.md §13).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/network.hpp"

namespace rafda::runtime {

class System;

class WorkloadDriver {
public:
    /// One top-level guest invocation issued by `node` (e.g. a proxy call
    /// through its interpreter).  Guest exceptions escaping the task (a
    /// RemoteFault from an injected drop, say) are absorbed and counted —
    /// one client's fault must not kill the whole workload.
    using Task = std::function<void(System&, net::NodeId)>;

    explicit WorkloadDriver(System& system) : system_(&system) {}

    /// Appends a client with an ordered queue of invocations.
    void add_client(net::NodeId node, std::vector<Task> tasks);
    /// Convenience: `count` repetitions of the same invocation.
    void add_client(net::NodeId node, std::size_t count, Task task);

    struct ClientReport {
        net::NodeId node = 0;
        std::uint64_t start_us = 0;  // node clock when run() began
        std::uint64_t end_us = 0;    // node clock when its queue drained
        std::size_t tasks = 0;
        std::size_t faults = 0;     // tasks that surfaced a guest exception
        std::size_t recovered = 0;  // tasks that completed but needed retries
    };
    /// One closed observation window (see set_window_us): deltas of the
    /// system-wide RPC counters over [start_us, end_us) of virtual time,
    /// for bench time series.
    struct Window {
        std::uint64_t start_us = 0;
        std::uint64_t end_us = 0;
        std::size_t tasks = 0;       // tasks completed in the window
        std::uint64_t rpc_calls = 0;  // Invoke+Create+Discover sent
        std::uint64_t wire_bytes = 0;  // request + reply bytes
    };

    struct Report {
        std::uint64_t start_us = 0;     // min client clock at run() entry
        std::uint64_t end_us = 0;       // max client clock at drain
        std::uint64_t makespan_us = 0;  // end_us - start_us
        std::size_t tasks_run = 0;
        /// Injected faults split by outcome: `recovered` tasks hit at
        /// least one transport failure but the retry policy absorbed it;
        /// `faults` tasks surfaced a guest exception to the client.
        std::size_t faults = 0;
        std::size_t recovered = 0;
        /// Exact per-task virtual-latency quantiles (nearest-rank over
        /// every task's client-clock delta; 0 when no task ran).
        std::uint64_t latency_p50_us = 0;
        std::uint64_t latency_p95_us = 0;
        std::uint64_t latency_p99_us = 0;
        /// Closed windows, oldest first; empty unless set_window_us(>0).
        /// The trailing partial window is closed at drain.
        std::vector<Window> windows;
        std::vector<ClientReport> clients;
    };

    /// Enables time-windowed deltas: while running, every `w` µs of
    /// virtual time closes a Window snapshot of the RPC counters.  0 (the
    /// default) disables windowing.  Window boundaries are checked at
    /// round boundaries, so a window closes at the first round edge past
    /// it — deterministic, since the round-robin order is.
    void set_window_us(std::uint64_t w) { window_us_ = w; }

    /// Client pipelining (DESIGN.md §17): each round a client issues up
    /// to `depth` consecutive invocations in node pipeline mode — reply
    /// waits are deferred to the end of the burst, so successive requests
    /// stream onto the link while it is still busy (the workload shape
    /// per-link batching coalesces).  1 (the default) is the legacy
    /// call-and-wait behaviour.  Host execution order is unchanged, so
    /// per-call results are identical; only virtual-time joins move.
    /// Task latencies are measured per burst (each task in a burst
    /// reports the burst-so-far delta from the burst's start clock).
    void set_pipeline_depth(std::size_t depth) {
        pipeline_depth_ = depth ? depth : 1;
    }

    /// Runs every queue to exhaustion, one invocation per client per
    /// round.  Can be called again after queueing more work; clocks carry
    /// over (virtual time never rewinds).
    Report run();

private:
    struct Client {
        net::NodeId node = 0;
        std::vector<Task> tasks;
        std::size_t next = 0;
        std::size_t faults = 0;
        std::size_t recovered = 0;
    };

    System* system_;
    std::vector<Client> clients_;
    std::uint64_t window_us_ = 0;
    std::size_t pipeline_depth_ = 1;
};

}  // namespace rafda::runtime
