// WorkloadDriver — a concurrent multi-client workload generator on the
// event-heap scheduler (DESIGN.md §18).
//
// The RAFDA follow-up papers frame the runtime as a *server* mediating
// many concurrent clients; this driver makes that workload expressible in
// the simulator.  Each client is a node with its own interpreter and heap,
// so a top-level guest invocation runs to completion as ordinary nested
// C++ (no coroutines needed) — concurrency exists purely in *virtual
// time*: per-node clocks advance independently, and contention appears
// exactly where the event-sequenced model says it must — on shared links
// (channel occupancy queues contending transfers) and on the server
// node's clock (requests arriving while it is busy wait their turn).
//
// Scheduling is a single EventHeap: every pending client is one POD event
// (its continuation is "run the next burst"), so 10⁵–10⁶ clients cost
// O(bytes per pending event), not O(queues × stack).  Two fairness modes
// pick the event key:
//
//  - RoundRobin (default): the key is the client's completed-burst count,
//    so the heap dispatches exactly the legacy round-robin interleaving —
//    one invocation per client per round, clients in registration order
//    within a round (the tie-break sequence preserves post order).  Legacy
//    workloads are a *degenerate event order* of the new scheduler, which
//    is why every pre-refactor bench JSON stays byte-identical.
//  - VirtualClock: the key is the client node's clock, so the next client
//    to run is always the one earliest in virtual time — the event-driven
//    order a discrete-event simulator wants at scale, and the mode
//    bench_scale (E13) runs.  SimNetwork transfer completions feed the
//    same heap as passive arrival events, sequencing network and client
//    work on one timeline.
//
// Either way the dispatch order is a pure function of the workload and
// the network seed — runs are bit-for-bit reproducible, and the heap's
// order digest makes that checkable in one comparison.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/network.hpp"

namespace rafda::runtime {

class System;

class WorkloadDriver {
public:
    /// One top-level guest invocation issued by `node` (e.g. a proxy call
    /// through its interpreter).  Guest exceptions escaping the task (a
    /// RemoteFault from an injected drop, say) are absorbed and counted —
    /// one client's fault must not kill the whole workload.
    using Task = std::function<void(System&, net::NodeId)>;

    /// Event-key policy; see the header comment.
    enum class Fairness { RoundRobin, VirtualClock };

    explicit WorkloadDriver(System& system) : system_(&system) {}

    /// Appends a client with an ordered queue of invocations.
    void add_client(net::NodeId node, std::vector<Task> tasks);
    /// Convenience: `count` repetitions of the same invocation.
    void add_client(net::NodeId node, std::size_t count, Task task);

    /// Bulk registration for scale runs: `clients` lightweight clients
    /// spread round-robin across `nodes` (client k lives on nodes[k %
    /// nodes.size()]), each issuing `tasks_each` repetitions of one shared
    /// task.  Fleet clients carry no per-client queue or report — their
    /// entire pending state is the event in the heap — so a million of
    /// them cost megabytes, not gigabytes.  Tallies aggregate into the
    /// Report totals; `Report::fleet_clients` counts them.
    void add_fleet(std::vector<net::NodeId> nodes, std::uint64_t clients,
                   std::uint32_t tasks_each, Task task);

    struct ClientReport {
        net::NodeId node = 0;
        std::uint64_t start_us = 0;  // node clock when run() began
        std::uint64_t end_us = 0;    // node clock when its queue drained
        std::uint64_t tasks = 0;
        std::uint64_t faults = 0;     // tasks that surfaced a guest exception
        std::uint64_t recovered = 0;  // tasks that completed but needed retries
    };
    /// One closed observation window (see set_window_us): deltas of the
    /// system-wide RPC counters over [start_us, end_us) of virtual time,
    /// for bench time series.
    struct Window {
        std::uint64_t start_us = 0;
        std::uint64_t end_us = 0;
        std::uint64_t tasks = 0;       // tasks completed in the window
        std::uint64_t rpc_calls = 0;   // Invoke+Create+Discover sent
        std::uint64_t wire_bytes = 0;  // request + reply bytes
    };

    struct Report {
        std::uint64_t start_us = 0;     // min client clock at run() entry
        std::uint64_t end_us = 0;       // max client clock at drain
        std::uint64_t makespan_us = 0;  // end_us - start_us
        std::uint64_t tasks_run = 0;
        /// Injected faults split by outcome: `recovered` tasks hit at
        /// least one transport failure but the retry policy absorbed it;
        /// `faults` tasks surfaced a guest exception to the client.
        std::uint64_t faults = 0;
        std::uint64_t recovered = 0;
        /// Exact per-task virtual-latency quantiles (nearest-rank over
        /// every task's client-clock delta; 0 when no task ran).
        std::uint64_t latency_p50_us = 0;
        std::uint64_t latency_p95_us = 0;
        std::uint64_t latency_p99_us = 0;
        /// Closed windows, oldest first; empty unless set_window_us(>0).
        /// The trailing partial window is closed at drain.
        std::vector<Window> windows;
        /// Per-client detail for explicitly added clients only; fleet
        /// clients aggregate into the totals above.
        std::vector<ClientReport> clients;
        /// Scheduler accounting for the run.
        std::uint64_t fleet_clients = 0;
        std::uint64_t events_dispatched = 0;
        std::uint64_t peak_pending_events = 0;  // bounded-memory witness
        std::uint64_t event_order_digest = 0;   // FNV-1a over the pop stream
    };

    /// Enables time-windowed deltas: while running, every `w` µs of
    /// virtual time closes a Window snapshot of the RPC counters.  0 (the
    /// default) disables windowing.  Window boundaries are checked at
    /// round boundaries (RoundRobin) or after each burst (VirtualClock),
    /// so a window closes at the first such edge past it — deterministic,
    /// since the dispatch order is.
    void set_window_us(std::uint64_t w) { window_us_ = w; }

    /// Client pipelining (DESIGN.md §17): each round a client issues up
    /// to `depth` consecutive invocations in node pipeline mode — reply
    /// waits are deferred to the end of the burst, so successive requests
    /// stream onto the link while it is still busy (the workload shape
    /// per-link batching coalesces).  1 (the default) is the legacy
    /// call-and-wait behaviour.  Host execution order is unchanged, so
    /// per-call results are identical; only virtual-time joins move.
    /// Task latencies are measured per burst (each task in a burst
    /// reports the burst-so-far delta from the burst's start clock).
    void set_pipeline_depth(std::size_t depth) {
        pipeline_depth_ = depth ? depth : 1;
    }

    /// Selects the event-key policy for subsequent run() calls.  The
    /// default, RoundRobin, reproduces the legacy interleaving exactly.
    void set_fairness(Fairness f) { fairness_ = f; }
    Fairness fairness() const noexcept { return fairness_; }

    /// Runs every queue to exhaustion through the event heap.  Can be
    /// called again after queueing more work; clocks carry over (virtual
    /// time never rewinds).
    Report run();

private:
    struct Client {
        net::NodeId node = 0;
        std::vector<Task> tasks;
        std::size_t next = 0;
        std::uint64_t faults = 0;
        std::uint64_t recovered = 0;
    };
    struct Fleet {
        std::vector<net::NodeId> nodes;
        std::uint64_t clients = 0;
        std::uint32_t tasks_each = 0;
        Task task;
    };

    System* system_;
    std::vector<Client> clients_;
    std::vector<Fleet> fleets_;
    std::uint64_t window_us_ = 0;
    std::size_t pipeline_depth_ = 1;
    Fairness fairness_ = Fairness::RoundRobin;
};

}  // namespace rafda::runtime
