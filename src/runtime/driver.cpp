#include "runtime/driver.hpp"

#include <algorithm>

#include "runtime/system.hpp"
#include "support/log.hpp"
#include "vm/interp.hpp"

namespace rafda::runtime {

void WorkloadDriver::add_client(net::NodeId node, std::vector<Task> tasks) {
    for (Client& c : clients_) {
        if (c.node != node) continue;
        c.tasks.insert(c.tasks.end(), std::make_move_iterator(tasks.begin()),
                       std::make_move_iterator(tasks.end()));
        return;
    }
    clients_.push_back(Client{node, std::move(tasks), 0, 0, 0});
}

void WorkloadDriver::add_client(net::NodeId node, std::size_t count, Task task) {
    std::vector<Task> tasks;
    tasks.reserve(count);
    for (std::size_t k = 0; k < count; ++k) tasks.push_back(task);
    add_client(node, std::move(tasks));
}

WorkloadDriver::Report WorkloadDriver::run() {
    Report report;
    if (clients_.empty()) return report;

    report.clients.reserve(clients_.size());
    for (Client& c : clients_) {
        ClientReport cr;
        cr.node = c.node;
        cr.start_us = system_->node(c.node).clock_us();
        report.clients.push_back(cr);
    }
    report.start_us = report.clients.front().start_us;
    for (const ClientReport& cr : report.clients)
        report.start_us = std::min(report.start_us, cr.start_us);

    // Round-robin: one invocation per client per round.  The execution
    // order is fixed, so the event sequence — and with it every clock,
    // link-occupancy window and drop decision — is deterministic.
    // Tasks that needed retries but still completed are "recovered":
    // detected by diffing the system-wide rpc.retries counter around each
    // invocation (the round-robin is sequential, so the delta belongs to
    // this task alone).
    obs::Counter& retries = system_->metrics().counter("rpc.retries");
    bool ran = true;
    while (ran) {
        ran = false;
        for (std::size_t i = 0; i < clients_.size(); ++i) {
            Client& c = clients_[i];
            if (c.next >= c.tasks.size()) continue;
            ran = true;
            const std::uint64_t retries_before = retries.value();
            try {
                c.tasks[c.next](*system_, c.node);
                if (retries.value() != retries_before) ++c.recovered;
            } catch (const vm::GuestException& e) {
                ++c.faults;
                log_debug("driver", "client ", c.node, " task ", c.next,
                          " raised ", e.class_name(), ": ", e.message());
            }
            ++c.next;
        }
    }

    report.end_us = report.start_us;
    for (std::size_t i = 0; i < clients_.size(); ++i) {
        Client& c = clients_[i];
        ClientReport& cr = report.clients[i];
        cr.end_us = system_->node(c.node).clock_us();
        cr.tasks = c.next;
        cr.faults = c.faults;
        cr.recovered = c.recovered;
        report.tasks_run += c.next;
        report.faults += c.faults;
        report.recovered += c.recovered;
        report.end_us = std::max(report.end_us, cr.end_us);
        // Consumed queues reset so a subsequent add_client + run() starts
        // a fresh window for this client.
        c.tasks.clear();
        c.next = 0;
        c.faults = 0;
        c.recovered = 0;
    }
    report.makespan_us = report.end_us - report.start_us;
    return report;
}

}  // namespace rafda::runtime
