#include "runtime/driver.hpp"

#include <algorithm>

#include "runtime/system.hpp"
#include "support/log.hpp"
#include "vm/interp.hpp"

namespace rafda::runtime {

void WorkloadDriver::add_client(net::NodeId node, std::vector<Task> tasks) {
    for (Client& c : clients_) {
        if (c.node != node) continue;
        c.tasks.insert(c.tasks.end(), std::make_move_iterator(tasks.begin()),
                       std::make_move_iterator(tasks.end()));
        return;
    }
    clients_.push_back(Client{node, std::move(tasks), 0, 0, 0});
}

void WorkloadDriver::add_client(net::NodeId node, std::size_t count, Task task) {
    std::vector<Task> tasks;
    tasks.reserve(count);
    for (std::size_t k = 0; k < count; ++k) tasks.push_back(task);
    add_client(node, std::move(tasks));
}

WorkloadDriver::Report WorkloadDriver::run() {
    Report report;
    if (clients_.empty()) return report;

    report.clients.reserve(clients_.size());
    for (Client& c : clients_) {
        ClientReport cr;
        cr.node = c.node;
        cr.start_us = system_->node(c.node).clock_us();
        report.clients.push_back(cr);
    }
    report.start_us = report.clients.front().start_us;
    for (const ClientReport& cr : report.clients)
        report.start_us = std::min(report.start_us, cr.start_us);

    // Round-robin: one invocation per client per round.  The execution
    // order is fixed, so the event sequence — and with it every clock,
    // link-occupancy window and drop decision — is deterministic.
    // Tasks that needed retries but still completed are "recovered":
    // detected by diffing the system-wide rpc.retries counter around each
    // invocation (the round-robin is sequential, so the delta belongs to
    // this task alone).
    obs::Counter& retries = system_->metrics().counter("rpc.retries");

    // Cumulative RPC counters across all protocols, for window deltas.
    auto rpc_totals = [&] {
        std::pair<std::uint64_t, std::uint64_t> t{0, 0};  // {calls, bytes}
        for (const auto& [proto, s] : system_->remote_stats()) {
            t.first += s.calls + s.creates + s.discovers;
            t.second += s.request_bytes + s.reply_bytes;
        }
        return t;
    };
    std::uint64_t window_start = system_->network().now_us();
    auto [win_calls, win_bytes] = window_us_ ? rpc_totals()
                                             : std::pair<std::uint64_t,
                                                         std::uint64_t>{0, 0};
    std::size_t win_tasks_done = 0;
    std::size_t tasks_done = 0;
    auto close_window = [&](std::uint64_t end) {
        auto [calls, bytes] = rpc_totals();
        Window w;
        w.start_us = window_start;
        w.end_us = end;
        w.tasks = tasks_done - win_tasks_done;
        // A reset_stats() mid-run rewinds the cumulative counters; clamp
        // the delta instead of underflowing and re-anchor the baseline.
        w.rpc_calls = calls >= win_calls ? calls - win_calls : calls;
        w.wire_bytes = bytes >= win_bytes ? bytes - win_bytes : bytes;
        report.windows.push_back(w);
        window_start = end;
        win_calls = calls;
        win_bytes = bytes;
        win_tasks_done = tasks_done;
    };

    std::vector<std::uint64_t> latencies;
    bool ran = true;
    while (ran) {
        ran = false;
        for (std::size_t i = 0; i < clients_.size(); ++i) {
            Client& c = clients_[i];
            if (c.next >= c.tasks.size()) continue;
            ran = true;
            Node& node = system_->node(c.node);
            // Pipelined clients issue a burst of invocations with reply
            // waits deferred; the drain below closes the burst before the
            // next client runs, so the round-robin event order — and with
            // it determinism — is untouched.
            const std::size_t burst =
                std::min(pipeline_depth_, c.tasks.size() - c.next);
            if (burst > 1) node.set_pipeline(true);
            const std::uint64_t t0 = node.clock_us();
            for (std::size_t b = 0; b < burst; ++b) {
                const std::uint64_t retries_before = retries.value();
                try {
                    c.tasks[c.next](*system_, c.node);
                    if (retries.value() != retries_before) ++c.recovered;
                } catch (const vm::GuestException& e) {
                    ++c.faults;
                    log_debug("driver", "client ", c.node, " task ", c.next,
                              " raised ", e.class_name(), ": ", e.message());
                }
                // The last burst member's latency is recorded after the
                // drain, so it covers the whole burst's reply horizon.
                if (b + 1 < burst) latencies.push_back(node.clock_us() - t0);
                ++c.next;
                ++tasks_done;
            }
            if (burst > 1) node.set_pipeline(false);
            latencies.push_back(node.clock_us() - t0);
        }
        if (window_us_) {
            // Close every whole window the watermark has passed; boundary
            // times are exact multiples so series align across runs.
            while (system_->network().now_us() >= window_start + window_us_)
                close_window(window_start + window_us_);
        }
    }
    if (window_us_ && (tasks_done > win_tasks_done ||
                       system_->network().now_us() > window_start))
        close_window(system_->network().now_us());

    if (!latencies.empty()) {
        std::sort(latencies.begin(), latencies.end());
        auto rank = [&](double q) {
            return latencies[static_cast<std::size_t>(
                q * static_cast<double>(latencies.size() - 1))];
        };
        report.latency_p50_us = rank(0.50);
        report.latency_p95_us = rank(0.95);
        report.latency_p99_us = rank(0.99);
    }

    report.end_us = report.start_us;
    for (std::size_t i = 0; i < clients_.size(); ++i) {
        Client& c = clients_[i];
        ClientReport& cr = report.clients[i];
        cr.end_us = system_->node(c.node).clock_us();
        cr.tasks = c.next;
        cr.faults = c.faults;
        cr.recovered = c.recovered;
        report.tasks_run += c.next;
        report.faults += c.faults;
        report.recovered += c.recovered;
        report.end_us = std::max(report.end_us, cr.end_us);
        // Consumed queues reset so a subsequent add_client + run() starts
        // a fresh window for this client.
        c.tasks.clear();
        c.next = 0;
        c.faults = 0;
        c.recovered = 0;
    }
    report.makespan_us = report.end_us - report.start_us;
    return report;
}

}  // namespace rafda::runtime
