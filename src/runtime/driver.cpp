#include "runtime/driver.hpp"

#include <algorithm>

#include "runtime/sched.hpp"
#include "runtime/system.hpp"
#include "support/log.hpp"
#include "vm/interp.hpp"

namespace rafda::runtime {

void WorkloadDriver::add_client(net::NodeId node, std::vector<Task> tasks) {
    for (Client& c : clients_) {
        if (c.node != node) continue;
        c.tasks.insert(c.tasks.end(), std::make_move_iterator(tasks.begin()),
                       std::make_move_iterator(tasks.end()));
        return;
    }
    clients_.push_back(Client{node, std::move(tasks), 0, 0, 0});
}

void WorkloadDriver::add_client(net::NodeId node, std::size_t count, Task task) {
    std::vector<Task> tasks;
    tasks.reserve(count);
    for (std::size_t k = 0; k < count; ++k) tasks.push_back(task);
    add_client(node, std::move(tasks));
}

void WorkloadDriver::add_fleet(std::vector<net::NodeId> nodes,
                               std::uint64_t clients, std::uint32_t tasks_each,
                               Task task) {
    if (nodes.empty() || clients == 0 || tasks_each == 0) return;
    Fleet f;
    f.nodes = std::move(nodes);
    f.clients = clients;
    f.tasks_each = tasks_each;
    f.task = std::move(task);
    fleets_.push_back(std::move(f));
}

WorkloadDriver::Report WorkloadDriver::run() {
    Report report;
    if (clients_.empty() && fleets_.empty()) return report;
    const bool vclock = fairness_ == Fairness::VirtualClock;

    report.clients.reserve(clients_.size());
    for (Client& c : clients_) {
        ClientReport cr;
        cr.node = c.node;
        cr.start_us = system_->node(c.node).clock_us();
        report.clients.push_back(cr);
    }
    bool have_start = false;
    auto fold_start = [&](std::uint64_t t) {
        if (!have_start || t < report.start_us) report.start_us = t;
        have_start = true;
    };
    for (const ClientReport& cr : report.clients) fold_start(cr.start_us);
    for (const Fleet& f : fleets_)
        for (net::NodeId n : f.nodes) fold_start(system_->node(n).clock_us());

    // Tasks that needed retries but still completed are "recovered":
    // detected by diffing the system-wide rpc.retries counter around each
    // invocation (dispatch is sequential, so the delta belongs to this
    // task alone).
    obs::Counter& retries = system_->metrics().counter("rpc.retries");

    // Cumulative RPC counters across all protocols, for window deltas.
    auto rpc_totals = [&] {
        std::pair<std::uint64_t, std::uint64_t> t{0, 0};  // {calls, bytes}
        for (const auto& [proto, s] : system_->remote_stats()) {
            t.first += s.calls + s.creates + s.discovers;
            t.second += s.request_bytes + s.reply_bytes;
        }
        return t;
    };
    std::uint64_t window_start = system_->network().now_us();
    auto [win_calls, win_bytes] = window_us_ ? rpc_totals()
                                             : std::pair<std::uint64_t,
                                                         std::uint64_t>{0, 0};
    std::uint64_t win_tasks_done = 0;
    std::uint64_t tasks_done = 0;
    auto close_window = [&](std::uint64_t end) {
        auto [calls, bytes] = rpc_totals();
        Window w;
        w.start_us = window_start;
        w.end_us = end;
        w.tasks = tasks_done - win_tasks_done;
        // A reset_stats() mid-run rewinds the cumulative counters; clamp
        // the delta instead of underflowing and re-anchor the baseline.
        w.rpc_calls = calls >= win_calls ? calls - win_calls : calls;
        w.wire_bytes = bytes >= win_bytes ? bytes - win_bytes : bytes;
        report.windows.push_back(w);
        window_start = end;
        win_calls = calls;
        win_bytes = bytes;
        win_tasks_done = tasks_done;
    };
    auto close_whole_windows = [&] {
        // Close every whole window the watermark has passed; boundary
        // times are exact multiples so series align across runs.
        while (system_->network().now_us() >= window_start + window_us_)
            close_window(window_start + window_us_);
    };

    std::vector<std::uint64_t> latencies;
    std::uint64_t fleet_tasks = 0;
    std::uint64_t fleet_faults = 0;
    std::uint64_t fleet_recovered = 0;

    // The scheduler.  A pending client's whole footprint is its Event; the
    // handlers below are its continuations ("run the next burst"), so
    // nothing per-client survives between dispatches except queue cursors
    // (explicit clients) or the remaining-count riding in the event itself
    // (fleet clients).  Handler registration order is fixed, so event
    // kinds — and with them the order digest — are stable across runs.
    EventHeap heap;

    // Continuation: one burst for an explicitly added client.  Pipelined
    // clients issue the burst with reply waits deferred; the drain closes
    // the burst before the next event dispatches, so the event order — and
    // with it determinism — is untouched.
    const std::uint32_t kClientStep = heap.register_handler([&](const Event& e) {
        Client& c = clients_[static_cast<std::size_t>(e.a)];
        Node& node = system_->node(c.node);
        const std::size_t burst =
            std::min(pipeline_depth_, c.tasks.size() - c.next);
        if (burst > 1) node.set_pipeline(true);
        const std::uint64_t t0 = node.clock_us();
        for (std::size_t b = 0; b < burst; ++b) {
            const std::uint64_t retries_before = retries.value();
            try {
                c.tasks[c.next](*system_, c.node);
                if (retries.value() != retries_before) ++c.recovered;
            } catch (const vm::GuestException& ex) {
                ++c.faults;
                log_debug("driver", "client ", c.node, " task ", c.next,
                          " raised ", ex.class_name(), ": ", ex.message());
            }
            // The last burst member's latency is recorded after the
            // drain, so it covers the whole burst's reply horizon.
            if (b + 1 < burst) latencies.push_back(node.clock_us() - t0);
            ++c.next;
            ++tasks_done;
        }
        if (burst > 1) node.set_pipeline(false);
        latencies.push_back(node.clock_us() - t0);
        if (c.next < c.tasks.size())
            heap.post(vclock ? node.clock_us() : e.at_us + 1, c.node, e.kind,
                      e.a);
    });

    // Continuation: one burst for a fleet client.  `a` packs (fleet,
    // client); `b` carries the remaining task count, so the event IS the
    // client state.
    const std::uint32_t kFleetStep = heap.register_handler([&](const Event& e) {
        Fleet& f = fleets_[static_cast<std::size_t>(e.a >> 32)];
        const std::uint64_t ci = e.a & 0xffffffffULL;
        const net::NodeId nid = f.nodes[ci % f.nodes.size()];
        Node& node = system_->node(nid);
        std::uint64_t remaining = e.b;
        const std::size_t burst = static_cast<std::size_t>(
            std::min<std::uint64_t>(pipeline_depth_, remaining));
        if (burst > 1) node.set_pipeline(true);
        const std::uint64_t t0 = node.clock_us();
        for (std::size_t b = 0; b < burst; ++b) {
            const std::uint64_t retries_before = retries.value();
            try {
                f.task(*system_, nid);
                if (retries.value() != retries_before) ++fleet_recovered;
            } catch (const vm::GuestException& ex) {
                ++fleet_faults;
                log_debug("driver", "fleet client ", nid, " raised ",
                          ex.class_name(), ": ", ex.message());
            }
            if (b + 1 < burst) latencies.push_back(node.clock_us() - t0);
            ++fleet_tasks;
            ++tasks_done;
        }
        if (burst > 1) node.set_pipeline(false);
        latencies.push_back(node.clock_us() - t0);
        remaining -= burst;
        if (remaining)
            heap.post(vclock ? node.clock_us() : e.at_us + 1, nid, e.kind, e.a,
                      remaining);
    });

    // Passive marker for a network transfer completion (VirtualClock only):
    // the transfer is already fully accounted by SimNetwork when the sink
    // fires, so the event carries no work — it exists to sequence network
    // completions into the same popped stream (and digest) as client work.
    const std::uint32_t kNetArrival = heap.register_handler([](const Event&) {});

    // Controller heartbeat for the adaptation engine (DESIGN.md §19): an
    // ordinary heap event, so adaptation decisions sit at deterministic
    // points of the same popped stream as client work in either fairness
    // mode.  The engine's own interval gate decides whether a heartbeat
    // becomes a tick, so the RoundRobin cadence (one heartbeat per round)
    // and the VirtualClock cadence (one per interval) behave identically
    // in watermark terms.  Never posted while adaptation is off — the
    // event stream, digest and wire schedule stay byte-identical.
    const std::uint64_t adapt_interval =
        system_->adaptation_enabled()
            ? system_->adaptation()->policy().interval_us
            : 0;
    const std::uint32_t kAdaptTick = heap.register_handler([&](const Event& e) {
        system_->adaptation_tick();
        if (!heap.empty())
            heap.post(vclock ? e.at_us + adapt_interval : e.at_us + 1, e.node,
                      e.kind);
    });

    // Seed the heap: explicit clients in registration order, then fleet
    // clients in index order.  In RoundRobin mode every initial event is
    // at round 0 and the tie-break sequence reproduces the legacy
    // client-iteration order exactly.
    for (std::size_t i = 0; i < clients_.size(); ++i) {
        if (clients_[i].tasks.empty()) continue;
        heap.post(vclock ? system_->node(clients_[i].node).clock_us() : 0,
                  clients_[i].node, kClientStep, i);
    }
    for (std::size_t fi = 0; fi < fleets_.size(); ++fi) {
        Fleet& f = fleets_[fi];
        for (std::uint64_t ci = 0; ci < f.clients; ++ci) {
            const net::NodeId nid = f.nodes[ci % f.nodes.size()];
            heap.post(vclock ? system_->node(nid).clock_us() : 0, nid,
                      kFleetStep, (static_cast<std::uint64_t>(fi) << 32) | ci,
                      f.tasks_each);
        }
    }

    if (adapt_interval)
        heap.post(vclock ? system_->network().now_us() + adapt_interval : 1, 0,
                  kAdaptTick);

    if (vclock)
        system_->network().set_completion_sink(
            [&heap, kNetArrival](net::NodeId src, net::NodeId dst,
                                 std::uint64_t at_us, bool) {
                heap.post(at_us, dst, kNetArrival,
                          static_cast<std::uint64_t>(
                              static_cast<std::uint32_t>(src)));
            });

    // Dispatch loop.  RoundRobin keys are round numbers: a popped key
    // change is a round boundary, the legacy window-check point.
    // VirtualClock keys are clocks; windows are checked after each burst.
    // With durability on, the watermark sweep after each burst lets idle
    // crashed nodes recover as soon as their window ends instead of
    // waiting for the next request to land on them (DESIGN.md §20); the
    // flag is hoisted so the legacy loop body is untouched when off.
    const bool durable = system_->durability_enabled();
    std::uint64_t cur_key = 0;
    while (!heap.empty()) {
        Event e = heap.pop();
        if (!vclock && window_us_ && e.at_us != cur_key) close_whole_windows();
        cur_key = e.at_us;
        heap.dispatch(e);
        if (durable) system_->observe_restarts();
        if (vclock && window_us_) close_whole_windows();
    }
    if (vclock) system_->network().set_completion_sink(nullptr);
    // Close the observation loop: backfill realized savings for decisions
    // from the final window (observe-only; the makespan is already set).
    if (adapt_interval) system_->adaptation_finalize();

    if (window_us_) {
        close_whole_windows();
        if (tasks_done > win_tasks_done ||
            system_->network().now_us() > window_start)
            close_window(system_->network().now_us());
    }

    if (!latencies.empty()) {
        std::sort(latencies.begin(), latencies.end());
        auto rank = [&](double q) {
            return latencies[static_cast<std::size_t>(
                q * static_cast<double>(latencies.size() - 1))];
        };
        report.latency_p50_us = rank(0.50);
        report.latency_p95_us = rank(0.95);
        report.latency_p99_us = rank(0.99);
    }

    report.end_us = report.start_us;
    for (std::size_t i = 0; i < clients_.size(); ++i) {
        Client& c = clients_[i];
        ClientReport& cr = report.clients[i];
        cr.end_us = system_->node(c.node).clock_us();
        cr.tasks = c.next;
        cr.faults = c.faults;
        cr.recovered = c.recovered;
        report.tasks_run += c.next;
        report.faults += c.faults;
        report.recovered += c.recovered;
        report.end_us = std::max(report.end_us, cr.end_us);
        // Consumed queues reset so a subsequent add_client + run() starts
        // a fresh window for this client.
        c.tasks.clear();
        c.next = 0;
        c.faults = 0;
        c.recovered = 0;
    }
    for (const Fleet& f : fleets_) {
        report.fleet_clients += f.clients;
        for (net::NodeId n : f.nodes)
            report.end_us = std::max(report.end_us, system_->node(n).clock_us());
    }
    fleets_.clear();
    report.tasks_run += fleet_tasks;
    report.faults += fleet_faults;
    report.recovered += fleet_recovered;
    report.makespan_us = report.end_us - report.start_us;
    report.events_dispatched = heap.dispatched();
    report.peak_pending_events = heap.peak_pending();
    report.event_order_digest = heap.order_digest();
    return report;
}

}  // namespace rafda::runtime
