// EventHeap — the single event-heap scheduler at the core of the
// million-client scale-out model (DESIGN.md §18).
//
// Every unit of pending work in a large workload — a client ready to
// issue its next invocation, a transfer completion published by the
// network — is one small POD event in a global priority queue ordered by
// (virtual time, tie-break sequence).  Client tasks are resumable steps:
// a client holds *no* host stack while pending, only its event, so 10⁵–10⁶
// simulated clients cost O(bytes per pending event) rather than O(stack
// per client).
//
// Determinism is structural: `post()` assigns a strictly increasing
// sequence number, so two events at the same virtual timestamp pop in
// post order — a total order that depends only on the (deterministic)
// execution history, never on heap internals or host iteration order.
// The popped stream is folded into an FNV-1a digest so "same seed ⇒ same
// event order" is a one-word comparison in tests and bench summaries.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace rafda::runtime {

/// One pending event.  `kind` selects a handler registered with the heap;
/// `a`/`b` are opaque continuation state (typically a client index and a
/// step argument) — the whole struct is the per-pending-client footprint.
struct Event {
    std::uint64_t at_us = 0;
    std::uint64_t seq = 0;  // assigned by post(); total-order tie-break
    std::int32_t node = 0;
    std::uint32_t kind = 0;
    std::uint64_t a = 0;
    std::uint64_t b = 0;
};

class EventHeap {
public:
    using Handler = std::function<void(const Event&)>;

    /// Registers a continuation and returns its `kind` id.  Handlers are
    /// registered once per run, never per event — events stay POD.
    std::uint32_t register_handler(Handler fn);

    /// Schedules an event; returns its sequence number.  Events posted at
    /// equal `at_us` dispatch in post order (deterministic tie-break).
    std::uint64_t post(std::uint64_t at_us, std::int32_t node, std::uint32_t kind,
                       std::uint64_t a = 0, std::uint64_t b = 0);

    bool empty() const noexcept { return heap_.empty(); }
    std::size_t pending() const noexcept { return heap_.size(); }
    /// High-water mark of pending events — the bounded-memory claim of the
    /// scale model is `peak_pending * sizeof(Event)`, not clients × stack.
    std::size_t peak_pending() const noexcept { return peak_pending_; }
    std::uint64_t posted() const noexcept { return posted_; }
    std::uint64_t dispatched() const noexcept { return dispatched_; }

    /// Virtual time of the most recently popped event (0 before any pop).
    std::uint64_t last_popped_at() const noexcept { return last_at_; }

    /// FNV-1a over the popped (at_us, seq, kind) stream: two runs dispatch
    /// the same events in the same order iff the digests match.
    std::uint64_t order_digest() const noexcept { return digest_; }

    /// Pops and returns the minimum (at_us, seq) event without dispatching
    /// it (the driver's loop wants control between pop and handle).
    Event pop();

    /// Invokes the registered handler for a popped event.
    void dispatch(const Event& e);

    /// Pops and dispatches events until the heap drains.  Handlers may
    /// post further events; they are merged into the same order.
    void run();

private:
    static bool later(const Event& x, const Event& y) noexcept {
        return x.at_us != y.at_us ? x.at_us > y.at_us : x.seq > y.seq;
    }
    void fold_digest(const Event& e) noexcept;

    std::vector<Event> heap_;  // binary min-heap via std::push/pop_heap
    std::vector<Handler> handlers_;
    std::uint64_t next_seq_ = 0;
    std::uint64_t posted_ = 0;
    std::uint64_t dispatched_ = 0;
    std::size_t peak_pending_ = 0;
    std::uint64_t last_at_ = 0;
    std::uint64_t digest_ = 1469598103934665603ULL;  // FNV-1a offset basis
};

}  // namespace rafda::runtime
