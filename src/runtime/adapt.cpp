#include "runtime/adapt.hpp"

#include <algorithm>
#include <cstring>

#include "net/faults.hpp"
#include "runtime/system.hpp"
#include "support/log.hpp"

namespace rafda::runtime {

namespace {

constexpr const char* kLatencyPrefix = "rpc.latency.";
constexpr const char* kLocalDiscoverPrefix = "runtime.local_discovers.";

bool has_prefix(const std::string& s, const char* prefix) {
    return s.rfind(prefix, 0) == 0;
}

}  // namespace

const char* adapt_action_name(AdaptDecision::Action a) {
    switch (a) {
        case AdaptDecision::Action::Migrate: return "migrate";
        case AdaptDecision::Action::Replicate: return "replicate";
        case AdaptDecision::Action::Defer: return "defer";
        case AdaptDecision::Action::Recover: return "recover";
    }
    return "?";
}

AdaptationEngine::AdaptationEngine(System& system, AdaptPolicy policy)
    : system_(&system), policy_(policy) {
    // First tick is due one interval in: the controller needs a window of
    // observation before it can score anything.
    next_due_ = system_->network().now_us() + policy_.interval_us;
    obs::Registry& reg = system_->metrics();
    decisions_ctr_ = &reg.counter("adapt.decisions");
    migrations_ctr_ = &reg.counter("adapt.migrations");
    replications_ctr_ = &reg.counter("adapt.replications");
    bytes_saved_ctr_ = &reg.counter("adapt.bytes_saved_est");
}

void AdaptationEngine::track_instance(const std::string& cls, net::NodeId node,
                                      std::uint64_t oid) {
    tracked_[cls] = {node, oid};
}

void AdaptationEngine::sample_windows(
    std::map<std::string, ClassWindow>& out,
    std::map<std::pair<net::NodeId, net::NodeId>, std::uint64_t>& link_bytes) {
    // Traffic matrix: per-class per-edge calls/bytes deltas.
    for (const auto& [cls, traffic] : system_->class_traffic()) {
        ClassWindow& w = out[cls];
        auto& prev = prev_class_[cls];
        for (const auto& [edge, calls] : traffic.calls) {
            const auto bit = traffic.bytes.find(edge);
            const std::uint64_t bytes = bit == traffic.bytes.end() ? 0 : bit->second;
            auto& [pc, pb] = prev[edge];
            Edge e;
            e.calls = calls >= pc ? calls - pc : calls;  // clamp across resets
            e.bytes = bytes >= pb ? bytes - pb : bytes;
            pc = calls;
            pb = bytes;
            if (e.calls == 0 && e.bytes == 0) continue;
            w.edges[edge] = e;
            w.calls += e.calls;
            w.bytes += e.bytes;
        }
    }

    // Per-method latency histograms: windowed call counts split into reads
    // and writes by the original-bytecode classifier.  `make`/`discover`
    // are control-plane operations, not class methods — excluded.
    system_->metrics().visit_histograms(
        [&](const std::string& name, const obs::Histogram& h) {
            if (!has_prefix(name, kLatencyPrefix)) return;
            const std::string rest = name.substr(std::strlen(kLatencyPrefix));
            const auto dot = rest.rfind('.');
            if (dot == std::string::npos) return;
            const std::string cls = rest.substr(0, dot);
            const std::string method = rest.substr(dot + 1);
            std::uint64_t& prev = prev_hist_counts_[name];
            const std::uint64_t count = h.count();
            const std::uint64_t delta = count >= prev ? count - prev : count;
            prev = count;
            if (delta == 0 || method == "make" || method == "discover") return;
            auto it = out.find(cls);
            if (it == out.end()) return;
            if (system_->replicas().method_is_readonly(cls, method))
                it->second.reads += delta;
            else
                it->second.writes += delta;
        });

    // Local singleton discovers: access the middleware cannot intercept.
    system_->metrics().visit_counters([&](const std::string& name,
                                          std::uint64_t value) {
        if (!has_prefix(name, kLocalDiscoverPrefix)) return;
        const std::string cls = name.substr(std::strlen(kLocalDiscoverPrefix));
        std::uint64_t& prev = prev_local_discovers_[name];
        const std::uint64_t delta = value >= prev ? value - prev : value;
        prev = value;
        auto it = out.find(cls);
        if (it != out.end()) it->second.local_discovers += delta;
    });

    // Per-link byte deltas for the congestion term.
    system_->network().visit_links([&](net::NodeId src, net::NodeId dst,
                                       const net::LinkStats& s) {
        std::uint64_t& prev = prev_link_bytes_[{src, dst}];
        const std::uint64_t delta = s.bytes >= prev ? s.bytes - prev : s.bytes;
        prev = s.bytes;
        if (delta) link_bytes[{src, dst}] = delta;
    });
}

void AdaptationEngine::backfill_realized(
    const std::map<std::string, ClassWindow>& windows) {
    for (std::size_t i : pending_) {
        AdaptDecision& d = decisions_[i];
        const auto it = windows.find(d.cls);
        const std::uint64_t now_bytes = it == windows.end() ? 0 : it->second.bytes;
        d.realized_saved_bytes = static_cast<std::int64_t>(d.window_bytes) -
                                 static_cast<std::int64_t>(now_bytes);
        d.realized_known = true;
    }
    pending_.clear();
}

bool AdaptationEngine::primary_of(const std::string& cls, net::NodeId& node,
                                  std::uint64_t& oid, bool& is_singleton) const {
    const auto it = tracked_.find(cls);
    if (it != tracked_.end()) {
        node = it->second.first;
        oid = it->second.second;
        is_singleton = false;
        return true;
    }
    const auto [n, o] = system_->find_singleton(cls);
    if (n < 0) return false;
    node = n;
    oid = o;
    is_singleton = true;
    return true;
}

AdaptDecision& AdaptationEngine::record(AdaptDecision d) {
    d.seq = decisions_.size() + 1;
    decisions_.push_back(std::move(d));
    AdaptDecision& r = decisions_.back();
    decisions_ctr_->add();
    if (system_->journal().enabled())
        system_->journal().record(obs::JournalEvent::Kind::Adapt, r.t_us, r.from,
                                  r.to, static_cast<std::uint64_t>(r.action),
                                  r.projected_saved_bytes, r.cls);
    return r;
}

void AdaptationEngine::decide_class(
    const std::string& cls, const ClassWindow& w,
    const std::map<std::pair<net::NodeId, net::NodeId>, std::uint64_t>& link_bytes,
    std::uint64_t now_us) {
    if (w.calls < policy_.min_window_calls) return;

    net::NodeId home = 0;
    std::uint64_t oid = 0;
    bool is_singleton = false;
    if (!primary_of(cls, home, oid, is_singleton)) return;

    // ---- replication tier ----
    // A read-mostly window replicates to its readers instead of migrating;
    // the home must show no local discovers (raw local references are the
    // one access the dispatch seam cannot see — DESIGN.md §19's contract).
    const std::uint64_t classified = w.reads + w.writes;
    const double read_share =
        classified ? static_cast<double>(w.reads) / static_cast<double>(classified)
                   : 0.0;
    if (classified >= policy_.min_window_calls &&
        read_share >= policy_.replicate_ratio && w.local_discovers == 0 &&
        no_replicate_.count(cls) == 0) {
        for (const auto& [edge, e] : w.edges) {
            const auto [src, dst] = edge;
            if (dst != home || src == home) continue;
            if (system_->replicas().find(home, oid, src)) continue;
            try {
                system_->create_replica(home, oid, cls, src);
            } catch (const std::exception& ex) {
                log_info("adapt", "class ", cls, " is not replicable: ",
                         ex.what());
                no_replicate_.insert(cls);
                return;
            }
            replications_ctr_->add();
            AdaptDecision d;
            d.t_us = now_us;
            d.cls = cls;
            d.action = AdaptDecision::Action::Replicate;
            d.from = home;
            d.to = src;
            d.window_calls = w.calls;
            d.window_bytes = w.bytes;
            d.projected_saved_bytes = e.bytes;
            pending_.push_back(decisions_.size());
            record(std::move(d));
        }
        // A read-mostly class stays put: its readers are (now) served
        // locally, so migrating it toward any single one is pointless.
        return;
    }

    // ---- migration tier ----
    std::map<net::NodeId, std::uint64_t> from_src;
    for (const auto& [edge, e] : w.edges) from_src[edge.first] += e.bytes;

    auto inbound_hot = [&](net::NodeId n) {
        std::uint64_t hot = 0;
        for (const auto& [edge, b] : link_bytes)
            if (edge.second == n) hot = std::max(hot, b);
        return hot;
    };
    auto score = [&](net::NodeId n) {
        const auto it = from_src.find(n);
        const std::uint64_t absorbed = it == from_src.end() ? 0 : it->second;
        return static_cast<double>(w.bytes - absorbed) +
               policy_.queue_weight * static_cast<double>(inbound_hot(n));
    };

    const double home_score = score(home);
    net::NodeId best = home;
    double best_score = home_score;
    for (const auto& [src, _] : from_src) {
        if (src == home) continue;
        const double s = score(src);
        if (s < best_score) {
            best_score = s;
            best = src;
        }
    }
    if (best == home) return;
    const double saving = home_score - best_score;
    if (saving < static_cast<double>(policy_.migrate_threshold_bytes)) return;

    AdaptDecision d;
    d.t_us = now_us;
    d.cls = cls;
    d.from = home;
    d.to = best;
    d.window_calls = w.calls;
    d.window_bytes = w.bytes;
    d.projected_saved_bytes = static_cast<std::uint64_t>(saving);

    // Home inside a crash window: a live migration cannot run (the state
    // to copy is on a dead node), but its WAL + snapshot can — with
    // durability on, migration-by-recovery rebuilds the class on `best`
    // from the durable image (DESIGN.md §20), a defer-free path around the
    // crash.  The whole branch is gated on durability so legacy adaptive
    // runs never even evaluate the home's fault state.
    if (system_->durability_enabled() &&
        system_->network().fault_plan().node_down(home, now_us)) {
        if (system_->node(home).durable() && !system_->node(home).wal()->empty() &&
            !system_->network().fault_plan().node_down(best, now_us)) {
            system_->recover_node_onto(home, best);
            // The whole image may already have been relocated by an earlier
            // decision this crash; either way relocation_of says where this
            // class's instance now lives.
            const System::Relocation* rel = system_->relocation_of(home);
            const net::NodeId where = rel ? rel->target : best;
            if (!is_singleton && rel) {
                const auto it = rel->remap.find(oid);
                if (it != rel->remap.end()) tracked_[cls] = {where, it->second};
            }
            migrations_ctr_->add();
            bytes_saved_ctr_->add(d.projected_saved_bytes);
            d.action = AdaptDecision::Action::Recover;
            d.to = where;
            pending_.push_back(decisions_.size());
            record(std::move(d));
            log_info("adapt", "recovered ", cls, " from crashed node ", home,
                     " onto ", where);
        } else {
            d.action = AdaptDecision::Action::Defer;
            record(std::move(d));
        }
        return;
    }

    // Destination inside a crash window: defer rather than stall the
    // reliable control channel against a dead node; the skew is still
    // there at the next tick, which retries.
    if (system_->network().fault_plan().node_down(best, now_us)) {
        d.action = AdaptDecision::Action::Defer;
        record(std::move(d));
        return;
    }

    if (is_singleton) {
        system_->migrate_singleton(cls, best);
    } else {
        const std::uint64_t new_oid = system_->migrate_instance(home, oid, best);
        tracked_[cls] = {best, new_oid};
    }
    migrations_ctr_->add();
    bytes_saved_ctr_->add(d.projected_saved_bytes);
    d.action = AdaptDecision::Action::Migrate;
    pending_.push_back(decisions_.size());
    const AdaptDecision& rec = record(std::move(d));
    log_info("adapt", "migrated ", cls, " ", home, " -> ", best,
             " (projected window saving ", rec.projected_saved_bytes, " bytes)");
}

bool AdaptationEngine::tick(std::uint64_t now_us, bool force) {
    if (!force && now_us < next_due_) return false;
    next_due_ = now_us + policy_.interval_us;
    ++ticks_;

    std::map<std::string, ClassWindow> windows;
    std::map<std::pair<net::NodeId, net::NodeId>, std::uint64_t> link_bytes;
    sample_windows(windows, link_bytes);
    backfill_realized(windows);
    for (const auto& [cls, w] : windows)
        decide_class(cls, w, link_bytes, now_us);
    return true;
}

void AdaptationEngine::finalize() {
    std::map<std::string, ClassWindow> windows;
    std::map<std::pair<net::NodeId, net::NodeId>, std::uint64_t> link_bytes;
    sample_windows(windows, link_bytes);
    backfill_realized(windows);
}

}  // namespace rafda::runtime
