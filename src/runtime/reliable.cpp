#include "runtime/reliable.hpp"

namespace rafda::runtime {

const char* breaker_state_name(CircuitBreaker::State s) {
    switch (s) {
        case CircuitBreaker::State::Closed: return "closed";
        case CircuitBreaker::State::Open: return "open";
        case CircuitBreaker::State::HalfOpen: return "half-open";
    }
    return "?";
}

}  // namespace rafda::runtime
