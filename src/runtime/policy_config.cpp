#include "runtime/policy_config.hpp"

#include <cstdlib>

#include "net/codec.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace rafda::runtime {

namespace {

void check_protocol(const std::string& proto, int lineno) {
    try {
        net::make_codec(proto);
    } catch (const CodecError&) {
        throw ParseError("unknown protocol '" + proto + "'", lineno);
    }
}

net::NodeId parse_node(const std::string& tok, int lineno) {
    char* end = nullptr;
    long v = std::strtol(tok.c_str(), &end, 10);
    if (!end || *end != '\0' || v < 0)
        throw ParseError("bad node id '" + tok + "'", lineno);
    return static_cast<net::NodeId>(v);
}

std::uint64_t parse_u64(const std::string& tok, int lineno) {
    char* end = nullptr;
    unsigned long long v = std::strtoull(tok.c_str(), &end, 10);
    if (!end || *end != '\0' || tok.empty() || tok[0] == '-')
        throw ParseError("bad number '" + tok + "'", lineno);
    return static_cast<std::uint64_t>(v);
}

double parse_prob(const std::string& tok, int lineno) {
    char* end = nullptr;
    double v = std::strtod(tok.c_str(), &end);
    if (!end || *end != '\0' || v < 0.0 || v > 1.0)
        throw ParseError("bad probability '" + tok + "'", lineno);
    return v;
}

/// Parses the trailing `from T until T [period P]` of a fault line into
/// `w`; `t` indexes the first expected token.
void parse_fault_window(const std::vector<std::string>& toks, std::size_t t,
                        bool allow_period, net::FaultWindow& w, int lineno) {
    if (t + 3 >= toks.size() || toks[t] != "from" || toks[t + 2] != "until")
        throw ParseError("expected 'from T until T'", lineno);
    w.from_us = parse_u64(toks[t + 1], lineno);
    w.until_us = parse_u64(toks[t + 3], lineno);
    if (w.until_us <= w.from_us)
        throw ParseError("fault window must end after it starts", lineno);
    t += 4;
    if (t < toks.size()) {
        if (!allow_period || toks[t] != "period" || t + 1 >= toks.size())
            throw ParseError("unexpected token '" + toks[t] + "'", lineno);
        w.period_us = parse_u64(toks[t + 1], lineno);
        t += 2;
    }
    if (t != toks.size()) throw ParseError("trailing tokens on fault line", lineno);
}

}  // namespace

void apply_policy_config(std::string_view text, DistributionPolicy& policy,
                         net::SimNetwork* network, RetryPolicy* reliability,
                         BatchPolicy* batching, AdaptPolicy* adaptation,
                         DurabilityPolicy* durability) {
    int lineno = 0;
    for (const std::string& raw : split(text, '\n')) {
        ++lineno;
        std::string_view line = trim(raw);
        std::size_t hash = line.find('#');
        if (hash != std::string_view::npos) line = trim(line.substr(0, hash));
        if (line.empty()) continue;

        std::vector<std::string> toks = split_ws(line);
        const std::string& head = toks[0];

        if (head == "protocol") {
            // protocol default PROTO
            if (toks.size() != 3 || toks[1] != "default")
                throw ParseError("syntax: protocol default PROTO", lineno);
            check_protocol(toks[2], lineno);
            policy.set_default_protocol(toks[2]);
        } else if (head == "instance" || head == "singleton") {
            // instance CLASS on NODE [via PROTO]
            if (toks.size() != 4 && toks.size() != 6)
                throw ParseError("syntax: " + head + " CLASS on NODE [via PROTO]", lineno);
            if (toks[2] != "on")
                throw ParseError("expected 'on' after class name", lineno);
            net::NodeId node = parse_node(toks[3], lineno);
            std::string proto;
            if (toks.size() == 6) {
                if (toks[4] != "via") throw ParseError("expected 'via PROTO'", lineno);
                check_protocol(toks[5], lineno);
                proto = toks[5];
            }
            if (head == "instance") policy.set_instance_home(toks[1], node, proto);
            else policy.set_singleton_home(toks[1], node, proto);
        } else if (head == "link") {
            // link SRC -> DST latency N [bandwidth B] [drop P]
            if (toks.size() < 6 || toks[2] != "->" || toks[4] != "latency")
                throw ParseError(
                    "syntax: link SRC -> DST latency N [bandwidth B] [drop P]", lineno);
            net::NodeId src = parse_node(toks[1], lineno);
            net::NodeId dst = parse_node(toks[3], lineno);
            net::LinkParams params;
            params.latency_us = static_cast<std::uint64_t>(
                std::strtoull(toks[5].c_str(), nullptr, 10));
            std::size_t t = 6;
            while (t < toks.size()) {
                if (toks[t] == "bandwidth" && t + 1 < toks.size()) {
                    params.bandwidth_bytes_per_us = std::strtod(toks[t + 1].c_str(), nullptr);
                    t += 2;
                } else if (toks[t] == "drop" && t + 1 < toks.size()) {
                    params.drop_probability = std::strtod(toks[t + 1].c_str(), nullptr);
                    t += 2;
                } else {
                    throw ParseError("unknown link attribute '" + toks[t] + "'", lineno);
                }
            }
            if (!network)
                throw ParseError("'link' line given but no network to configure", lineno);
            network->set_link(src, dst, params);
        } else if (head == "retry") {
            // retry attempts N [base B] [multiplier M] [cap C] [jitter J]
            //                 [budget N] [deadline D]
            if (!reliability)
                throw ParseError("'retry' line given but no reliability policy", lineno);
            if (toks.size() < 3 || toks.size() % 2 == 0 || toks[1] != "attempts")
                throw ParseError(
                    "syntax: retry attempts N [base B] [multiplier M] [cap C] "
                    "[jitter J] [budget N] [deadline D]",
                    lineno);
            const std::uint64_t attempts = parse_u64(toks[2], lineno);
            if (attempts == 0) throw ParseError("attempts must be >= 1", lineno);
            reliability->attempts = static_cast<std::uint32_t>(attempts);
            for (std::size_t t = 3; t + 1 < toks.size(); t += 2) {
                const std::string& key = toks[t];
                const std::string& val = toks[t + 1];
                if (key == "base") reliability->backoff_base_us = parse_u64(val, lineno);
                else if (key == "multiplier") {
                    reliability->backoff_multiplier = std::strtod(val.c_str(), nullptr);
                    if (reliability->backoff_multiplier < 1.0)
                        throw ParseError("multiplier must be >= 1", lineno);
                } else if (key == "cap") reliability->backoff_cap_us = parse_u64(val, lineno);
                else if (key == "jitter") reliability->jitter_us = parse_u64(val, lineno);
                else if (key == "budget") reliability->retry_budget = parse_u64(val, lineno);
                else if (key == "deadline") reliability->deadline_us = parse_u64(val, lineno);
                else throw ParseError("unknown retry attribute '" + key + "'", lineno);
            }
        } else if (head == "dedup") {
            // dedup on|off [capacity N]
            if (!reliability)
                throw ParseError("'dedup' line given but no reliability policy", lineno);
            if (toks.size() != 2 && toks.size() != 4)
                throw ParseError("syntax: dedup on|off [capacity N]", lineno);
            if (toks[1] != "on" && toks[1] != "off")
                throw ParseError("dedup must be 'on' or 'off'", lineno);
            reliability->dedup = toks[1] == "on";
            if (toks.size() == 4) {
                if (toks[2] != "capacity")
                    throw ParseError("expected 'capacity N'", lineno);
                reliability->dedup_capacity =
                    static_cast<std::size_t>(parse_u64(toks[3], lineno));
            }
        } else if (head == "breaker") {
            // breaker threshold N [cooldown C]
            if (!reliability)
                throw ParseError("'breaker' line given but no reliability policy", lineno);
            if ((toks.size() != 3 && toks.size() != 5) || toks[1] != "threshold")
                throw ParseError("syntax: breaker threshold N [cooldown C]", lineno);
            reliability->breaker_threshold =
                static_cast<std::uint32_t>(parse_u64(toks[2], lineno));
            if (toks.size() == 5) {
                if (toks[3] != "cooldown")
                    throw ParseError("expected 'cooldown C'", lineno);
                reliability->breaker_cooldown_us = parse_u64(toks[4], lineno);
            }
        } else if (head == "batch") {
            // batch on|off [max N]
            if (!batching)
                throw ParseError("'batch' line given but no batch policy", lineno);
            if (toks.size() != 2 && toks.size() != 4)
                throw ParseError("syntax: batch on|off [max N]", lineno);
            if (toks[1] != "on" && toks[1] != "off")
                throw ParseError("batch must be 'on' or 'off'", lineno);
            batching->enabled = toks[1] == "on";
            if (toks.size() == 4) {
                if (toks[2] != "max") throw ParseError("expected 'max N'", lineno);
                const std::uint64_t max_calls = parse_u64(toks[3], lineno);
                if (max_calls < 2)
                    throw ParseError("batch max must be >= 2 (opener + entry)", lineno);
                batching->max_frame_calls = static_cast<std::uint32_t>(max_calls);
            }
        } else if (head == "adapt") {
            // adapt on|off [interval N] [migrate-threshold B]
            //              [replicate-ratio R] [min-calls N]
            if (!adaptation)
                throw ParseError("'adapt' line given but no adaptation policy",
                                 lineno);
            if (toks.size() < 2 || toks.size() % 2 != 0)
                throw ParseError(
                    "syntax: adapt on|off [interval N] [migrate-threshold B] "
                    "[replicate-ratio R] [min-calls N]",
                    lineno);
            if (toks[1] != "on" && toks[1] != "off")
                throw ParseError("adapt must be 'on' or 'off'", lineno);
            adaptation->enabled = toks[1] == "on";
            for (std::size_t t = 2; t + 1 < toks.size(); t += 2) {
                const std::string& key = toks[t];
                const std::string& val = toks[t + 1];
                if (key == "interval") {
                    adaptation->interval_us = parse_u64(val, lineno);
                    if (adaptation->interval_us == 0)
                        throw ParseError("interval must be > 0", lineno);
                } else if (key == "migrate-threshold") {
                    adaptation->migrate_threshold_bytes = parse_u64(val, lineno);
                } else if (key == "replicate-ratio") {
                    adaptation->replicate_ratio = parse_prob(val, lineno);
                } else if (key == "min-calls") {
                    adaptation->min_window_calls = parse_u64(val, lineno);
                } else {
                    throw ParseError("unknown adapt attribute '" + key + "'",
                                     lineno);
                }
            }
        } else if (head == "durable") {
            // durable on|off [snapshot-interval N]
            if (!durability)
                throw ParseError("'durable' line given but no durability policy",
                                 lineno);
            if (toks.size() != 2 && toks.size() != 4)
                throw ParseError("syntax: durable on|off [snapshot-interval N]",
                                 lineno);
            if (toks[1] != "on" && toks[1] != "off")
                throw ParseError("durable must be 'on' or 'off'", lineno);
            durability->enabled = toks[1] == "on";
            if (toks.size() == 4) {
                if (toks[2] != "snapshot-interval")
                    throw ParseError("expected 'snapshot-interval N'", lineno);
                durability->snapshot_interval_us = parse_u64(toks[3], lineno);
            }
        } else if (head == "fault") {
            // fault link SRC -> DST down|flap from T until T [period P]
            // fault link SRC -> DST drop P from T until T
            // fault node N crash from T until T
            if (!network)
                throw ParseError("'fault' line given but no network to configure", lineno);
            if (toks.size() < 2)
                throw ParseError("syntax: fault link|node ...", lineno);
            net::FaultWindow w;
            if (toks[1] == "link") {
                if (toks.size() < 6 || toks[3] != "->")
                    throw ParseError(
                        "syntax: fault link SRC -> DST down|flap|drop ...", lineno);
                w.src = parse_node(toks[2], lineno);
                w.dst = parse_node(toks[4], lineno);
                const std::string& mode = toks[5];
                if (mode == "down") {
                    w.kind = net::FaultKind::LinkDown;
                    parse_fault_window(toks, 6, /*allow_period=*/false, w, lineno);
                } else if (mode == "flap") {
                    w.kind = net::FaultKind::LinkFlap;
                    parse_fault_window(toks, 6, /*allow_period=*/true, w, lineno);
                    if (w.period_us == 0)
                        throw ParseError("flap needs 'period P' with P > 0", lineno);
                } else if (mode == "drop") {
                    if (toks.size() < 7)
                        throw ParseError("syntax: fault link SRC -> DST drop P from T until T",
                                         lineno);
                    w.kind = net::FaultKind::DropRate;
                    w.drop_probability = parse_prob(toks[6], lineno);
                    parse_fault_window(toks, 7, /*allow_period=*/false, w, lineno);
                } else {
                    throw ParseError("unknown link fault '" + mode + "'", lineno);
                }
            } else if (toks[1] == "node") {
                if (toks.size() < 4 || toks[3] != "crash")
                    throw ParseError("syntax: fault node N crash from T until T", lineno);
                w.kind = net::FaultKind::NodeCrash;
                w.node = parse_node(toks[2], lineno);
                parse_fault_window(toks, 4, /*allow_period=*/false, w, lineno);
            } else {
                throw ParseError("fault target must be 'link' or 'node'", lineno);
            }
            network->fault_plan().add(w);
        } else {
            throw ParseError("unknown directive '" + head + "'", lineno);
        }
    }
}

}  // namespace rafda::runtime
