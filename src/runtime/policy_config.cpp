#include "runtime/policy_config.hpp"

#include <cstdlib>

#include "net/codec.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace rafda::runtime {

namespace {

void check_protocol(const std::string& proto, int lineno) {
    try {
        net::make_codec(proto);
    } catch (const CodecError&) {
        throw ParseError("unknown protocol '" + proto + "'", lineno);
    }
}

net::NodeId parse_node(const std::string& tok, int lineno) {
    char* end = nullptr;
    long v = std::strtol(tok.c_str(), &end, 10);
    if (!end || *end != '\0' || v < 0)
        throw ParseError("bad node id '" + tok + "'", lineno);
    return static_cast<net::NodeId>(v);
}

}  // namespace

void apply_policy_config(std::string_view text, DistributionPolicy& policy,
                         net::SimNetwork* network) {
    int lineno = 0;
    for (const std::string& raw : split(text, '\n')) {
        ++lineno;
        std::string_view line = trim(raw);
        std::size_t hash = line.find('#');
        if (hash != std::string_view::npos) line = trim(line.substr(0, hash));
        if (line.empty()) continue;

        std::vector<std::string> toks = split_ws(line);
        const std::string& head = toks[0];

        if (head == "protocol") {
            // protocol default PROTO
            if (toks.size() != 3 || toks[1] != "default")
                throw ParseError("syntax: protocol default PROTO", lineno);
            check_protocol(toks[2], lineno);
            policy.set_default_protocol(toks[2]);
        } else if (head == "instance" || head == "singleton") {
            // instance CLASS on NODE [via PROTO]
            if (toks.size() != 4 && toks.size() != 6)
                throw ParseError("syntax: " + head + " CLASS on NODE [via PROTO]", lineno);
            if (toks[2] != "on")
                throw ParseError("expected 'on' after class name", lineno);
            net::NodeId node = parse_node(toks[3], lineno);
            std::string proto;
            if (toks.size() == 6) {
                if (toks[4] != "via") throw ParseError("expected 'via PROTO'", lineno);
                check_protocol(toks[5], lineno);
                proto = toks[5];
            }
            if (head == "instance") policy.set_instance_home(toks[1], node, proto);
            else policy.set_singleton_home(toks[1], node, proto);
        } else if (head == "link") {
            // link SRC -> DST latency N [bandwidth B] [drop P]
            if (toks.size() < 6 || toks[2] != "->" || toks[4] != "latency")
                throw ParseError(
                    "syntax: link SRC -> DST latency N [bandwidth B] [drop P]", lineno);
            net::NodeId src = parse_node(toks[1], lineno);
            net::NodeId dst = parse_node(toks[3], lineno);
            net::LinkParams params;
            params.latency_us = static_cast<std::uint64_t>(
                std::strtoull(toks[5].c_str(), nullptr, 10));
            std::size_t t = 6;
            while (t < toks.size()) {
                if (toks[t] == "bandwidth" && t + 1 < toks.size()) {
                    params.bandwidth_bytes_per_us = std::strtod(toks[t + 1].c_str(), nullptr);
                    t += 2;
                } else if (toks[t] == "drop" && t + 1 < toks.size()) {
                    params.drop_probability = std::strtod(toks[t + 1].c_str(), nullptr);
                    t += 2;
                } else {
                    throw ParseError("unknown link attribute '" + toks[t] + "'", lineno);
                }
            }
            if (!network)
                throw ParseError("'link' line given but no network to configure", lineno);
            network->set_link(src, dst, params);
        } else {
            throw ParseError("unknown directive '" + head + "'", lineno);
        }
    }
}

}  // namespace rafda::runtime
