#include "support/error.hpp"

namespace rafda {

void verify_that(bool cond, const std::string& what) {
    if (!cond) throw VerifyError(what);
}

}  // namespace rafda
