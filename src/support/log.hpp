// Minimal leveled logger.  Quiet by default so tests and benches stay
// readable; examples raise the level to narrate what the middleware does.
//
// The startup level can also come from the environment: RAFDA_LOG_LEVEL
// (off | error | warn | info | debug, or the numeric value) is honoured
// on first use unless set_log_level was called first.  When a running
// System registers its virtual clock (set_log_time_source), every line is
// prefixed with the VM logical time, so log output lines up with metric
// snapshots and trace spans.
#pragma once

#include <cstdint>
#include <functional>
#include <sstream>
#include <string>

namespace rafda {

enum class LogLevel { Off = 0, Error = 1, Warn = 2, Info = 3, Debug = 4 };

/// Process-wide log level (single-threaded simulation, so a plain global).
void set_log_level(LogLevel level);
LogLevel log_level();

/// Registers the VM logical-time source used to prefix log lines; `owner`
/// identifies the registrant so a dying System only clears its own source
/// (see clear_log_time_source).  Pass a null fn to clear explicitly.
void set_log_time_source(std::function<std::int64_t()> fn, const void* owner);
/// Clears the time source iff `owner` registered the current one.
void clear_log_time_source(const void* owner);

void log_line(LogLevel level, const std::string& tag, const std::string& msg);

/// Convenience: log_info("net", "delivered ", n, " messages").
template <typename... Args>
void log_info(const std::string& tag, Args&&... args) {
    if (log_level() < LogLevel::Info) return;
    std::ostringstream os;
    (os << ... << args);
    log_line(LogLevel::Info, tag, os.str());
}

template <typename... Args>
void log_warn(const std::string& tag, Args&&... args) {
    if (log_level() < LogLevel::Warn) return;
    std::ostringstream os;
    (os << ... << args);
    log_line(LogLevel::Warn, tag, os.str());
}

template <typename... Args>
void log_debug(const std::string& tag, Args&&... args) {
    if (log_level() < LogLevel::Debug) return;
    std::ostringstream os;
    (os << ... << args);
    log_line(LogLevel::Debug, tag, os.str());
}

}  // namespace rafda
