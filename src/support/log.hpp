// Minimal leveled logger.  Quiet by default so tests and benches stay
// readable; examples raise the level to narrate what the middleware does.
#pragma once

#include <sstream>
#include <string>

namespace rafda {

enum class LogLevel { Off = 0, Error = 1, Info = 2, Debug = 3 };

/// Process-wide log level (single-threaded simulation, so a plain global).
void set_log_level(LogLevel level);
LogLevel log_level();

void log_line(LogLevel level, const std::string& tag, const std::string& msg);

/// Convenience: log_info("net", "delivered ", n, " messages").
template <typename... Args>
void log_info(const std::string& tag, Args&&... args) {
    if (log_level() < LogLevel::Info) return;
    std::ostringstream os;
    (os << ... << args);
    log_line(LogLevel::Info, tag, os.str());
}

template <typename... Args>
void log_debug(const std::string& tag, Args&&... args) {
    if (log_level() < LogLevel::Debug) return;
    std::ostringstream os;
    (os << ... << args);
    log_line(LogLevel::Debug, tag, os.str());
}

}  // namespace rafda
