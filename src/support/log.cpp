#include "support/log.hpp"

#include <iostream>

namespace rafda {

namespace {
LogLevel g_level = LogLevel::Off;
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

void log_line(LogLevel level, const std::string& tag, const std::string& msg) {
    if (log_level() < level) return;
    const char* name = level == LogLevel::Error ? "ERROR"
                     : level == LogLevel::Info  ? "INFO "
                                                : "DEBUG";
    std::clog << "[" << name << "] [" << tag << "] " << msg << '\n';
}

}  // namespace rafda
