#include "support/log.hpp"

#include <cctype>
#include <cstdlib>
#include <iostream>
#include <optional>

namespace rafda {

namespace {

std::optional<LogLevel> g_level;
std::function<std::int64_t()> g_time_source;
const void* g_time_owner = nullptr;

std::optional<LogLevel> parse_level(const char* text) {
    if (!text) return std::nullopt;
    std::string s(text);
    for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    if (s == "off" || s == "0") return LogLevel::Off;
    if (s == "error" || s == "1") return LogLevel::Error;
    if (s == "warn" || s == "warning" || s == "2") return LogLevel::Warn;
    if (s == "info" || s == "3") return LogLevel::Info;
    if (s == "debug" || s == "4") return LogLevel::Debug;
    return std::nullopt;
}

}  // namespace

void set_log_level(LogLevel level) { g_level = level; }

LogLevel log_level() {
    if (!g_level) g_level = parse_level(std::getenv("RAFDA_LOG_LEVEL")).value_or(LogLevel::Off);
    return *g_level;
}

void set_log_time_source(std::function<std::int64_t()> fn, const void* owner) {
    g_time_source = std::move(fn);
    g_time_owner = g_time_source ? owner : nullptr;
}

void clear_log_time_source(const void* owner) {
    if (g_time_owner != owner) return;
    g_time_source = nullptr;
    g_time_owner = nullptr;
}

void log_line(LogLevel level, const std::string& tag, const std::string& msg) {
    if (log_level() < level) return;
    const char* name = level == LogLevel::Error ? "ERROR"
                     : level == LogLevel::Warn  ? "WARN "
                     : level == LogLevel::Info  ? "INFO "
                                                : "DEBUG";
    std::clog << "[" << name << "] ";
    if (g_time_source) std::clog << "[t=" << g_time_source() << "us] ";
    std::clog << "[" << tag << "] " << msg << '\n';
}

}  // namespace rafda
