#include "support/thread_pool.hpp"

#include <algorithm>

namespace rafda::support {

std::size_t ThreadPool::hardware_threads() {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ThreadPool::ThreadPool(std::size_t threads) : threads_(std::max<std::size_t>(1, threads)) {
    ranges_.reserve(threads_);
    for (std::size_t i = 0; i < threads_; ++i)
        ranges_.push_back(std::make_unique<Range>());
    workers_.reserve(threads_ - 1);
    for (std::size_t i = 1; i < threads_; ++i)
        workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard<std::mutex> lk(job_mu_);
        stop_ = true;
    }
    job_cv_.notify_all();
    for (std::thread& t : workers_) t.join();
}

std::uint64_t ThreadPool::items_executed() const noexcept {
    return items_executed_.load(std::memory_order_relaxed);
}

std::uint64_t ThreadPool::steals() const noexcept {
    return steals_.load(std::memory_order_relaxed);
}

void ThreadPool::for_each_index(std::size_t n,
                                const std::function<void(std::size_t)>& fn) {
    if (n == 0) return;
    bool inline_run = threads_ == 1 || n == 1;
    if (!inline_run) {
        std::lock_guard<std::mutex> lk(job_mu_);
        if (in_job_) inline_run = true;  // re-entrant call: run inline
    }
    if (inline_run) {
        for (std::size_t i = 0; i < n; ++i) fn(i);
        items_executed_.fetch_add(n, std::memory_order_relaxed);
        return;
    }

    {
        std::lock_guard<std::mutex> lk(job_mu_);
        in_job_ = true;
        cancelled_ = false;
        job_error_ = nullptr;
        job_fn_ = &fn;
        // One contiguous slice per participant; slices may be empty when
        // n < threads_ (those participants go straight to stealing).
        const std::size_t per = n / threads_;
        const std::size_t extra = n % threads_;
        std::size_t at = 0;
        for (std::size_t i = 0; i < threads_; ++i) {
            const std::size_t len = per + (i < extra ? 1 : 0);
            ranges_[i]->next = at;
            ranges_[i]->end = at + len;
            at += len;
        }
        active_workers_ = threads_ - 1;
        ++epoch_;
    }
    job_cv_.notify_all();

    work(0);  // the caller is participant 0

    std::unique_lock<std::mutex> lk(job_mu_);
    done_cv_.wait(lk, [&] { return active_workers_ == 0; });
    job_fn_ = nullptr;
    in_job_ = false;
    if (job_error_) {
        std::exception_ptr err = job_error_;
        job_error_ = nullptr;
        lk.unlock();
        std::rethrow_exception(err);
    }
}

void ThreadPool::worker_loop(std::size_t self) {
    std::uint64_t seen_epoch = 0;
    for (;;) {
        {
            std::unique_lock<std::mutex> lk(job_mu_);
            job_cv_.wait(lk, [&] { return stop_ || epoch_ != seen_epoch; });
            if (stop_) return;
            seen_epoch = epoch_;
        }
        work(self);
        {
            std::lock_guard<std::mutex> lk(job_mu_);
            if (--active_workers_ == 0) done_cv_.notify_one();
        }
    }
}

/// Pops a block off the front of `r`.  Block size shrinks with the range
/// (quarter of what is left) so tails self-balance without a tuning knob.
bool ThreadPool::take_block(Range& r, std::size_t& begin, std::size_t& end) {
    std::lock_guard<std::mutex> lk(r.mu);
    if (r.next >= r.end) return false;
    const std::size_t remaining = r.end - r.next;
    const std::size_t block = std::max<std::size_t>(1, remaining / 4);
    begin = r.next;
    end = begin + block;
    r.next = end;
    return true;
}

/// Steals the upper half of the fullest victim range into ranges_[self].
bool ThreadPool::steal_into(std::size_t self) {
    // Snapshot sizes without locks; verify under the victim's lock.
    std::size_t victim = self;
    std::size_t best = 0;
    for (std::size_t i = 0; i < threads_; ++i) {
        if (i == self) continue;
        Range& r = *ranges_[i];
        std::lock_guard<std::mutex> lk(r.mu);
        const std::size_t remaining = r.end > r.next ? r.end - r.next : 0;
        if (remaining > best) {
            best = remaining;
            victim = i;
        }
    }
    if (victim == self || best == 0) return false;

    Range& v = *ranges_[victim];
    Range& mine = *ranges_[self];
    std::scoped_lock lk(v.mu, mine.mu);
    if (v.next >= v.end) return false;  // drained since the scan
    const std::size_t remaining = v.end - v.next;
    const std::size_t mid = v.end - (remaining + 1) / 2;
    mine.next = mid;
    mine.end = v.end;
    v.end = mid;
    steals_.fetch_add(1, std::memory_order_relaxed);
    return true;
}

void ThreadPool::record_error() {
    std::lock_guard<std::mutex> lk(job_mu_);
    if (!job_error_) job_error_ = std::current_exception();
    cancelled_ = true;
}

void ThreadPool::work(std::size_t self) {
    const std::function<void(std::size_t)>& fn = *job_fn_;
    Range& mine = *ranges_[self];
    for (;;) {
        std::size_t begin = 0;
        std::size_t end = 0;
        if (!take_block(mine, begin, end)) {
            if (!steal_into(self)) return;
            continue;
        }
        {
            std::lock_guard<std::mutex> lk(job_mu_);
            if (cancelled_) continue;  // keep draining ranges, skip the work
        }
        std::size_t done = 0;
        for (std::size_t i = begin; i < end; ++i) {
            try {
                fn(i);
                ++done;
            } catch (...) {
                record_error();
                break;
            }
        }
        items_executed_.fetch_add(done, std::memory_order_relaxed);
    }
}

}  // namespace rafda::support
