// Error hierarchy shared by all RAFDA subsystems.
//
// Errors that indicate misuse of the library, malformed input or broken
// invariants are reported by throwing one of the exception types below
// (E.2: throw to signal that a function can't perform its task).  Expected,
// recoverable conditions (e.g. a remote call failing because of injected
// network faults) are modelled as ordinary return values by the subsystems
// that need them.
#pragma once

#include <stdexcept>
#include <string>

namespace rafda {

/// Base class of all errors raised by the RAFDA libraries.
class Error : public std::runtime_error {
public:
    explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Malformed RIR assembly, bad descriptor syntax, unresolvable names.
class ParseError : public Error {
public:
    ParseError(const std::string& what, int line)
        : Error("parse error (line " + std::to_string(line) + "): " + what),
          line_(line) {}

    int line() const noexcept { return line_; }

private:
    int line_;
};

/// A class pool or class file violates a structural invariant
/// (dangling reference, duplicate member, bad stack shape, ...).
class VerifyError : public Error {
public:
    explicit VerifyError(const std::string& what) : Error("verify error: " + what) {}
};

/// The interpreter encountered a condition that a verified program should
/// never produce (wrong operand type, missing method, null dereference that
/// the guest program did not handle, ...).
class VmError : public Error {
public:
    explicit VmError(const std::string& what) : Error("vm error: " + what) {}
};

/// The transformation pipeline was asked to do something impossible
/// (e.g. substitute a class the analysis marked non-transformable).
class TransformError : public Error {
public:
    explicit TransformError(const std::string& what) : Error("transform error: " + what) {}
};

/// Marshalling / unmarshalling failure in a protocol codec.
class CodecError : public Error {
public:
    explicit CodecError(const std::string& what) : Error("codec error: " + what) {}
};

/// Distributed-runtime misconfiguration (unknown node, unexported object, ...).
class RuntimeError : public Error {
public:
    explicit RuntimeError(const std::string& what) : Error("runtime error: " + what) {}
};

/// Throws VerifyError with `what` when `cond` is false.
void verify_that(bool cond, const std::string& what);

}  // namespace rafda
