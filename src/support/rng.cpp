#include "support/rng.hpp"

namespace rafda {

std::uint64_t Rng::next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t Rng::below(std::uint64_t bound) {
    // Rejection sampling to avoid modulo bias.
    std::uint64_t threshold = -bound % bound;
    while (true) {
        std::uint64_t r = next();
        if (r >= threshold) return r % bound;
    }
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo + 1)));
}

double Rng::uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

bool Rng::chance(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform() < p;
}

Rng Rng::fork() { return Rng(next() ^ 0xa5a5a5a5deadbeefULL); }

std::uint64_t Rng::mix(std::uint64_t seed, std::uint64_t salt) {
    std::uint64_t z = seed ^ (salt + 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

}  // namespace rafda
