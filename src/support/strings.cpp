#include "support/strings.hpp"

#include <cctype>

#include "support/error.hpp"

namespace rafda {

std::vector<std::string> split(std::string_view s, char sep) {
    std::vector<std::string> out;
    std::size_t start = 0;
    while (true) {
        std::size_t pos = s.find(sep, start);
        if (pos == std::string_view::npos) {
            out.emplace_back(s.substr(start));
            return out;
        }
        out.emplace_back(s.substr(start, pos - start));
        start = pos + 1;
    }
}

std::vector<std::string> split_ws(std::string_view s) {
    std::vector<std::string> out;
    std::size_t i = 0;
    while (i < s.size()) {
        while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
        std::size_t start = i;
        while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
        if (i > start) out.emplace_back(s.substr(start, i - start));
    }
    return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i) out += sep;
        out += parts[i];
    }
    return out;
}

std::string_view trim(std::string_view s) {
    while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) s.remove_prefix(1);
    while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) s.remove_suffix(1);
    return s;
}

bool starts_with(std::string_view s, std::string_view prefix) {
    return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
    return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::string xml_escape(std::string_view s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
            case '&': out += "&amp;"; break;
            case '<': out += "&lt;"; break;
            case '>': out += "&gt;"; break;
            case '"': out += "&quot;"; break;
            default: out += c;
        }
    }
    return out;
}

std::string xml_unescape(std::string_view s) {
    std::string out;
    out.reserve(s.size());
    std::size_t i = 0;
    while (i < s.size()) {
        if (s[i] != '&') {
            out += s[i++];
            continue;
        }
        std::size_t semi = s.find(';', i);
        if (semi == std::string_view::npos) throw CodecError("unterminated XML entity");
        std::string_view ent = s.substr(i + 1, semi - i - 1);
        if (ent == "amp") out += '&';
        else if (ent == "lt") out += '<';
        else if (ent == "gt") out += '>';
        else if (ent == "quot") out += '"';
        else throw CodecError("unknown XML entity: " + std::string(ent));
        i = semi + 1;
    }
    return out;
}

}  // namespace rafda
