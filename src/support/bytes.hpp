// Byte-oriented reader/writer used by the wire codecs.
//
// Integers are encoded little-endian at fixed width; strings are
// length-prefixed.  ByteReader throws CodecError on truncated input so
// codecs never read past the end of a message.
//
// A ByteWriter can either own its buffer (the historical behaviour) or
// borrow one — e.g. a frame leased from a support::BufferPool — so encode
// paths append straight into pooled storage with no final copy.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace rafda {

using Bytes = std::vector<std::uint8_t>;

/// Appends primitive values to a growing byte vector.
class ByteWriter {
public:
    ByteWriter() = default;
    /// Borrowing mode: appends into `external` (cleared first, capacity
    /// kept).  The caller owns the buffer; it must outlive the writer and
    /// `take()` must not be used.
    explicit ByteWriter(Bytes& external) : buf_(&external) { external.clear(); }
    ByteWriter(const ByteWriter&) = delete;
    ByteWriter& operator=(const ByteWriter&) = delete;

    void u8(std::uint8_t v);
    void u16(std::uint16_t v);
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    /// LEB128-style unsigned varint: 7 value bits per byte, high bit =
    /// continuation.  Small values (batch-entry id deltas) cost one byte.
    void varu64(std::uint64_t v);
    void i32(std::int32_t v);
    void i64(std::int64_t v);
    void f64(double v);
    /// Length-prefixed (u32) string.
    void str(std::string_view v);
    /// Raw bytes, no length prefix.
    void raw(const Bytes& v);
    /// Raw character data, no length prefix (text protocols).
    void text(std::string_view v);

    const Bytes& data() const noexcept { return *buf_; }
    /// Owning mode only: moves the buffer out.
    Bytes take() noexcept { return std::move(*buf_); }
    std::size_t size() const noexcept { return buf_->size(); }

private:
    Bytes owned_;
    Bytes* buf_ = &owned_;
};

/// Consumes primitive values from a byte span; throws CodecError on
/// truncation.
class ByteReader {
public:
    explicit ByteReader(const Bytes& data) : data_(&data) {}

    std::uint8_t u8();
    std::uint16_t u16();
    std::uint32_t u32();
    std::uint64_t u64();
    /// Counterpart of ByteWriter::varu64; throws CodecError past 10 bytes.
    std::uint64_t varu64();
    std::int32_t i32();
    std::int64_t i64();
    double f64();
    std::string str();

    bool at_end() const noexcept { return pos_ == data_->size(); }
    std::size_t remaining() const noexcept { return data_->size() - pos_; }

private:
    void need(std::size_t n) const;

    const Bytes* data_;
    std::size_t pos_ = 0;
};

}  // namespace rafda
