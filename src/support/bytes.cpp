#include "support/bytes.hpp"

#include <bit>
#include <cstring>

#include "support/error.hpp"

namespace rafda {

void ByteWriter::u8(std::uint8_t v) { buf_->push_back(v); }

void ByteWriter::u16(std::uint16_t v) {
    buf_->push_back(static_cast<std::uint8_t>(v));
    buf_->push_back(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::varu64(std::uint64_t v) {
    while (v >= 0x80) {
        buf_->push_back(static_cast<std::uint8_t>(v) | 0x80);
        v >>= 7;
    }
    buf_->push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
void ByteWriter::i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

void ByteWriter::f64(double v) {
    std::uint64_t bits;
    static_assert(sizeof bits == sizeof v);
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
}

void ByteWriter::str(std::string_view v) {
    u32(static_cast<std::uint32_t>(v.size()));
    buf_->insert(buf_->end(), v.begin(), v.end());
}

void ByteWriter::raw(const Bytes& v) { buf_->insert(buf_->end(), v.begin(), v.end()); }

void ByteWriter::text(std::string_view v) { buf_->insert(buf_->end(), v.begin(), v.end()); }

void ByteReader::need(std::size_t n) const {
    if (pos_ + n > data_->size()) throw CodecError("truncated message");
}

std::uint8_t ByteReader::u8() {
    need(1);
    return (*data_)[pos_++];
}

std::uint16_t ByteReader::u16() {
    need(2);
    std::uint16_t v = static_cast<std::uint16_t>((*data_)[pos_] | ((*data_)[pos_ + 1] << 8));
    pos_ += 2;
    return v;
}

std::uint32_t ByteReader::u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>((*data_)[pos_ + i]) << (8 * i);
    pos_ += 4;
    return v;
}

std::uint64_t ByteReader::u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>((*data_)[pos_ + i]) << (8 * i);
    pos_ += 8;
    return v;
}

std::uint64_t ByteReader::varu64() {
    std::uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
        std::uint8_t b = u8();
        v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
        if (!(b & 0x80)) return v;
    }
    throw CodecError("varint too long");
}

std::int32_t ByteReader::i32() { return static_cast<std::int32_t>(u32()); }
std::int64_t ByteReader::i64() { return static_cast<std::int64_t>(u64()); }

double ByteReader::f64() {
    std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
}

std::string ByteReader::str() {
    std::uint32_t n = u32();
    need(n);
    std::string s(reinterpret_cast<const char*>(data_->data() + pos_), n);
    pos_ += n;
    return s;
}

}  // namespace rafda
