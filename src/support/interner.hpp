// String interner — dense u32 ids for class names.
//
// The transformation side of the system is dominated by string-keyed maps
// (class names appear in every edge of the reference graph).  The interner
// assigns each distinct string a dense `Id` once, so graph algorithms can
// run over `std::vector` adjacency indexed by id instead of re-hashing
// strings per edge.  Ids are assigned in intern() call order: interning a
// sorted sequence yields ids whose numeric order equals name order, which
// the analysis uses to keep its worklist deterministic.
//
// Thread-safety: intern() mutates and must be externally serialised;
// find()/name()/size() are const and safe to call concurrently once the
// mutating phase is over.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace rafda::support {

class Interner {
public:
    using Id = std::uint32_t;
    /// Returned by find() for strings never interned.
    static constexpr Id kNoId = 0xffffffffu;

    Interner() = default;
    Interner(const Interner&) = delete;
    Interner& operator=(const Interner&) = delete;
    // Moving is safe: deque element addresses survive a container move, so
    // the string_view keys/values keep pointing at live storage.
    Interner(Interner&&) = default;
    Interner& operator=(Interner&&) = default;

    /// Resolve-or-create.  The id of a string is stable for the interner's
    /// lifetime.
    Id intern(std::string_view s);

    /// Id of `s`, or kNoId when it was never interned.  Const lookup only.
    Id find(std::string_view s) const;

    bool contains(std::string_view s) const { return find(s) != kNoId; }

    /// The string behind `id`.  The view is stable for the interner's
    /// lifetime; throws std::out_of_range on a bad id.
    std::string_view name(Id id) const;

    std::size_t size() const noexcept { return by_id_.size(); }

private:
    std::deque<std::string> storage_;  // stable addresses for the views
    std::unordered_map<std::string_view, Id> ids_;
    std::vector<std::string_view> by_id_;
};

}  // namespace rafda::support
