// Deterministic pseudo-random number generator (SplitMix64).
//
// Everything stochastic in the reproduction — corpus generation, workload
// generation, fault injection, latency jitter — draws from this generator so
// experiments are reproducible from a seed.
#pragma once

#include <cstdint>

namespace rafda {

class Rng {
public:
    explicit Rng(std::uint64_t seed) : state_(seed) {}

    /// Next raw 64-bit value.
    std::uint64_t next();

    /// Uniform integer in [0, bound); bound must be > 0.
    std::uint64_t below(std::uint64_t bound);

    /// Uniform integer in [lo, hi] inclusive.
    std::int64_t range(std::int64_t lo, std::int64_t hi);

    /// Uniform double in [0, 1).
    double uniform();

    /// True with probability p (clamped to [0,1]).
    bool chance(double p);

    /// Forks an independent stream (useful for giving each subsystem its
    /// own deterministic sequence).
    Rng fork();

    /// Mixes `salt` into `seed` (one SplitMix64 finalization round) for
    /// deriving independent streams from a base seed *without* consuming
    /// state: e.g. one stream per network link, so drop decisions on one
    /// link can never perturb the sequence another link sees.
    static std::uint64_t mix(std::uint64_t seed, std::uint64_t salt);

private:
    std::uint64_t state_;
};

}  // namespace rafda
