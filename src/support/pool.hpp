// BufferPool — a free-list pool of message buffers for the RPC hot path.
//
// Every remote call used to allocate (and free) a fresh std::vector for
// the request frame and another for the reply; at steady state those
// vectors have the same handful of sizes, so the allocations are pure
// churn.  The pool keeps retired buffers on a LIFO free list (the
// most-recently-used buffer is the one whose capacity — and cache lines —
// best fit the next message) and hands them back cleared but with their
// grown capacity intact, so encode paths that write through a borrowed
// ByteWriter stop allocating entirely once the working set has warmed up
// (DESIGN.md §17; the object-pool idiom follows viper's rt_pool).
//
// The pool is intentionally single-threaded, like the simulator itself:
// the RPC path is host-sequential even when the workload is concurrent in
// virtual time.  Nested leases (a dispatch that issues nested RPCs while
// its own frames are live) simply deepen the pool.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "support/bytes.hpp"

namespace rafda::support {

class BufferPool {
public:
    /// `max_retained` bounds the free list; buffers released beyond it
    /// are genuinely freed so a one-off burst cannot pin memory forever.
    explicit BufferPool(std::size_t max_retained = 32)
        : max_retained_(max_retained) {}

    /// An empty buffer, reusing retained capacity when available.
    Bytes acquire() {
        ++acquires_;
        if (free_.empty()) return Bytes{};
        ++reuses_;
        Bytes b = std::move(free_.back());
        free_.pop_back();
        b.clear();
        return b;
    }

    /// Retires a buffer, keeping its capacity for the next acquire().
    void release(Bytes&& b) {
        if (free_.size() < max_retained_ && b.capacity() > 0)
            free_.push_back(std::move(b));
    }

    /// Total acquire() calls (pool traffic).
    std::uint64_t acquires() const noexcept { return acquires_; }
    /// Acquires served from the free list instead of a fresh allocation.
    std::uint64_t reuses() const noexcept { return reuses_; }
    /// Buffers currently parked on the free list.
    std::size_t retained() const noexcept { return free_.size(); }

private:
    std::size_t max_retained_;
    std::vector<Bytes> free_;
    std::uint64_t acquires_ = 0;
    std::uint64_t reuses_ = 0;
};

/// RAII lease of one pooled buffer: acquired on construction, returned on
/// destruction.  Typical use wraps it in a borrowing ByteWriter:
///
///   PooledBuffer frame(pool);
///   ByteWriter w(frame.bytes());
///   codec.encode_request_into(req, w);   // writes into the pooled frame
class PooledBuffer {
public:
    explicit PooledBuffer(BufferPool& pool) : pool_(&pool), buf_(pool.acquire()) {}
    ~PooledBuffer() {
        if (pool_) pool_->release(std::move(buf_));
    }
    PooledBuffer(PooledBuffer&& other) noexcept
        : pool_(other.pool_), buf_(std::move(other.buf_)) {
        other.pool_ = nullptr;
    }
    PooledBuffer(const PooledBuffer&) = delete;
    PooledBuffer& operator=(const PooledBuffer&) = delete;
    PooledBuffer& operator=(PooledBuffer&&) = delete;

    Bytes& bytes() noexcept { return buf_; }
    const Bytes& bytes() const noexcept { return buf_; }

private:
    BufferPool* pool_;
    Bytes buf_;
};

}  // namespace rafda::support
