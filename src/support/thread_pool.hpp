// Work-stealing thread pool for the static (transformation) side.
//
// The pool exists for one access pattern: a phase owns N independent,
// similarly-shaped work items (analyse a class, generate a family, verify
// a class) and wants them spread across cores with no ordering promises —
// determinism is the *merger's* job, never the scheduler's.
//
// for_each_index(n, fn) partitions [0, n) into one contiguous range per
// participant (the calling thread works too).  Each participant consumes
// its own range front-to-back in shrinking blocks; a participant whose
// range runs dry locks the largest remaining victim range and steals its
// upper half.  That keeps all cores busy under skewed per-item costs
// (one class with 300 methods next to 299 trivial ones) without a shared
// queue in the fast path.
//
// Semantics:
//   - fn(i) is called exactly once for every i in [0, n), unless a call
//     throws: the first exception is captured, remaining unstarted blocks
//     are abandoned, and the exception is rethrown on the caller.
//   - Re-entrant calls (fn itself calling for_each_index on the same
//     pool) run inline on the calling thread — safe, just not parallel.
//   - A pool with thread_count() == 1 spawns no threads at all and runs
//     everything inline; RAFDA_TRANSFORM_THREADS=1 therefore really is
//     the serial program.
//
// items_executed() / steals() feed the obs registry's pool-occupancy
// probes (transform.pool.*).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace rafda::support {

class ThreadPool {
public:
    /// `threads` counts the calling thread: ThreadPool(4) = caller + 3
    /// workers.  0 is clamped to 1.
    explicit ThreadPool(std::size_t threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    std::size_t thread_count() const noexcept { return threads_; }

    /// Runs fn(0..n-1) across the pool; blocks until every item ran (or
    /// one threw).  The callable must be safe to invoke concurrently for
    /// distinct indices.
    void for_each_index(std::size_t n, const std::function<void(std::size_t)>& fn);

    /// Total items executed over the pool's lifetime (all jobs).
    std::uint64_t items_executed() const noexcept;
    /// Range-steal events over the pool's lifetime.
    std::uint64_t steals() const noexcept;

    /// std::thread::hardware_concurrency with a floor of 1.
    static std::size_t hardware_threads();

private:
    struct Range {
        std::mutex mu;
        std::size_t next = 0;
        std::size_t end = 0;
    };

    void worker_loop(std::size_t self);
    void work(std::size_t self);
    bool take_block(Range& r, std::size_t& begin, std::size_t& end);
    bool steal_into(std::size_t self);
    void record_error();

    const std::size_t threads_;
    std::vector<std::unique_ptr<Range>> ranges_;  // one per participant
    std::vector<std::thread> workers_;

    std::mutex job_mu_;
    std::condition_variable job_cv_;   // workers wait for a new epoch
    std::condition_variable done_cv_;  // caller waits for workers to finish
    std::uint64_t epoch_ = 0;
    std::size_t active_workers_ = 0;
    const std::function<void(std::size_t)>* job_fn_ = nullptr;
    std::exception_ptr job_error_;
    bool cancelled_ = false;  // first exception abandons remaining blocks
    bool in_job_ = false;     // re-entrancy guard (caller thread only)
    bool stop_ = false;

    std::atomic<std::uint64_t> items_executed_{0};
    std::atomic<std::uint64_t> steals_{0};
};

}  // namespace rafda::support
