// Small string helpers used across the RAFDA libraries.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace rafda {

/// Splits `s` on `sep`, keeping empty pieces.
std::vector<std::string> split(std::string_view s, char sep);

/// Splits `s` on runs of whitespace, dropping empty pieces.
std::vector<std::string> split_ws(std::string_view s);

/// Joins `parts` with `sep`.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Strips leading and trailing whitespace.
std::string_view trim(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

/// Escapes &, <, >, " for embedding in SOAPX documents.
std::string xml_escape(std::string_view s);

/// Inverse of xml_escape; throws CodecError on malformed entities.
std::string xml_unescape(std::string_view s);

}  // namespace rafda
