#include "support/interner.hpp"

#include <stdexcept>

namespace rafda::support {

Interner::Id Interner::intern(std::string_view s) {
    auto it = ids_.find(s);
    if (it != ids_.end()) return it->second;
    storage_.emplace_back(s);
    const Id id = static_cast<Id>(by_id_.size());
    std::string_view stable = storage_.back();
    by_id_.push_back(stable);
    ids_.emplace(stable, id);
    return id;
}

Interner::Id Interner::find(std::string_view s) const {
    auto it = ids_.find(s);
    return it == ids_.end() ? kNoId : it->second;
}

std::string_view Interner::name(Id id) const {
    if (id >= by_id_.size()) throw std::out_of_range("Interner::name: bad id");
    return by_id_[id];
}

}  // namespace rafda::support
