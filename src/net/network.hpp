// SimNetwork — a deterministic in-process network between address spaces.
//
// The middleware runs all nodes in one OS process (each with its own VM and
// heap), so the "network" models cost and failure rather than moving bytes.
// Time is *event-sequenced*: a transfer is an event with an explicit send
// time (the sender's virtual clock) and a computed arrival time
//
//   depart  = max(send_time, link busy_until)
//   arrival = depart + latency + size/bandwidth
//
// Each directed link is a channel that can carry one message at a time, so
// contending transfers queue behind `busy_until` instead of being free —
// this is what makes a multi-client workload exhibit real contention
// (DESIGN.md §13).  `now_us()` is the global watermark: the latest event
// completion observed anywhere, which for a single sequential caller
// reduces exactly to the old single-global-clock behaviour.  Fault
// injection drops messages deterministically from a seeded PRNG, so
// experiments are exactly reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>

#include "net/faults.hpp"
#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "support/bytes.hpp"
#include "support/rng.hpp"

namespace rafda::net {

struct LinkParams {
    /// One-way propagation delay in microseconds.
    std::uint64_t latency_us = 100;
    /// Bytes per microsecond (e.g. 125 = 1 Gbit/s).
    double bandwidth_bytes_per_us = 125.0;
    /// Probability a transfer is lost.
    double drop_probability = 0.0;
};

struct LinkStats {
    /// Frames put on the wire (coalesced continuation entries excluded).
    std::uint64_t messages = 0;
    std::uint64_t bytes = 0;
    std::uint64_t drops = 0;
    /// Entries appended to an already-in-flight frame instead of opening
    /// a new one (transfer_coalesced_at).
    std::uint64_t coalesced = 0;
    /// Total virtual time the link spent occupied (sum of depart→arrival
    /// windows, drops included up to the loss point).
    std::uint64_t busy_us = 0;
};

/// Outcome of one sequenced transfer.  `at_us` is the arrival time when
/// delivered, or the time the loss becomes observable (depart + latency)
/// when dropped — the link was occupied either way.  `coalesced` reports
/// whether the bytes rode an already-in-flight frame (and so paid no
/// fresh propagation delay).
struct Delivery {
    bool delivered = false;
    std::uint64_t at_us = 0;
    bool coalesced = false;
};

class SimNetwork {
public:
    explicit SimNetwork(std::uint64_t seed = 1);

    /// Default parameters for links without an explicit setting.
    void set_default_link(LinkParams params);
    /// Directed link override.
    void set_link(NodeId src, NodeId dst, LinkParams params);
    const LinkParams& link(NodeId src, NodeId dst) const;

    /// Sequences one transfer of `size` bytes sent at `send_us` on the
    /// sender's clock: the message departs when the link frees up, the
    /// link stays busy until the arrival time, and the global watermark
    /// advances to the returned event time.  Drops (fault injection) still
    /// occupy the link for the propagation delay.
    Delivery transfer_at(NodeId src, NodeId dst, std::size_t size,
                         std::uint64_t send_us);

    /// Like transfer_at, but when the link is still occupied at `send_us`
    /// the bytes are appended to the in-flight frame instead of queueing
    /// behind it: the entry departs at busy_until and arrives after its
    /// serialization time alone — it shares the frame's propagation delay
    /// rather than paying a fresh one (cut-through pipelining; DESIGN.md
    /// §17).  Fault evaluation and the per-link drop stream are consulted
    /// exactly as transfer_at would at the same departure time, so a
    /// coalesced schedule makes the identical PRNG draws.  On a free link
    /// this degrades to transfer_at (Delivery.coalesced = false), letting
    /// callers probe link_busy_until() and append atomically.
    Delivery transfer_coalesced_at(NodeId src, NodeId dst, std::size_t size,
                                   std::uint64_t send_us);

    /// Legacy synchronous transfer: sends at the global watermark and
    /// returns the delay, or nullopt when the message was dropped (the
    /// watermark still advances by the link's latency — losing a message
    /// costs the propagation delay before the sender can observe it).
    /// Equivalent to `transfer_at(src, dst, size, now_us())`.
    std::optional<std::uint64_t> transfer(NodeId src, NodeId dst, std::size_t size);

    /// Advances the global watermark by a compute cost charged to no
    /// particular node (legacy; per-node work belongs on Node clocks).
    void charge_compute(std::uint64_t us);

    /// Pulls the global watermark up to `t` (no-op when already past):
    /// how per-node clock advances become visible to `now_us()`.
    void observe(std::uint64_t t) noexcept {
        if (t > clock_us_) clock_us_ = t;
    }

    /// Global virtual-time watermark: the latest event completion observed
    /// anywhere in the system.
    std::uint64_t now_us() const noexcept { return clock_us_; }

    /// Time until which the directed link is occupied (0 = never used).
    std::uint64_t link_busy_until(NodeId src, NodeId dst) const;

    const LinkStats& stats(NodeId src, NodeId dst) const;
    LinkStats total_stats() const;
    /// Per-link traversal in (src, dst) order, for tables and exports.
    void visit_links(
        const std::function<void(NodeId, NodeId, const LinkStats&)>& fn) const;
    /// Clears per-link stats and marks the current watermark as the new
    /// epoch for utilization_ppm, so post-reset utilization is busy time
    /// over time *since the reset* rather than since t=0.  Channel
    /// occupancy (`busy_until_`) deliberately survives: it is physical
    /// link state, not accounting — an in-flight message does not vanish
    /// because an observer zeroed its dashboards.
    void reset_stats();

    /// Scheduled failures (link down/flap, drop overrides, node crashes)
    /// evaluated against each transfer's departure time.  Deterministic
    /// windows never draw from the PRNG; drop overrides draw from the
    /// same per-link stream as the link's configured drop probability.
    FaultPlan& fault_plan() noexcept { return fault_plan_; }
    const FaultPlan& fault_plan() const noexcept { return fault_plan_; }

    /// Mirrors per-link accounting into `registry` as counters named
    /// net.link.<src>.<dst>.{messages,bytes,drops,busy_us} plus a
    /// net.link.<src>.<dst>.utilization_ppm gauge (busy time as parts per
    /// million of elapsed virtual time).  Pass nullptr to detach.  The
    /// registry must outlive the network (or be detached).
    void attach_metrics(obs::Registry* registry);

    /// Flight recorder for link fault-window edges: each transfer
    /// evaluates the fault plan at its departure time, and the first
    /// evaluation that observes a link's down-state differing from the
    /// last observation records a FaultEdge event (a=1 entering a down
    /// window, a=0 leaving one).  Edges are therefore stamped with the
    /// virtual time the fault became *observable*, which is what a
    /// timeline reader wants — a window nobody sent into never happened.
    /// Pass nullptr to detach; the journal must outlive the network.
    void attach_journal(obs::Journal* journal) { journal_ = journal; }

    /// Watermark value at the last reset_stats(): the epoch the
    /// utilization_ppm denominators — and, via System::reset_stats(), the
    /// journal and windowed-delta epochs — measure from.
    std::uint64_t stats_epoch_us() const noexcept { return stats_epoch_us_; }

    /// Publishes each sequenced transfer's completion (arrival when
    /// delivered, loss-observable time when dropped) to an external event
    /// sink — how the scheduler's event heap sees network completions on
    /// the same timeline as client work (DESIGN.md §18).  Purely
    /// observational: called after the transfer is fully accounted, never
    /// advances clocks or draws from a PRNG.  Pass nullptr (the default)
    /// to detach; the sink must outlive its installation.
    using CompletionSink =
        std::function<void(NodeId src, NodeId dst, std::uint64_t at_us,
                           bool delivered)>;
    void set_completion_sink(CompletionSink sink) {
        completion_sink_ = std::move(sink);
    }

private:
    struct LinkMetrics {
        obs::Counter* messages = nullptr;
        obs::Counter* bytes = nullptr;
        obs::Counter* drops = nullptr;
        obs::Counter* coalesced = nullptr;
        obs::Counter* busy_us = nullptr;
        obs::Gauge* utilization_ppm = nullptr;
    };
    LinkMetrics& link_metrics(NodeId src, NodeId dst);
    Rng& link_rng(NodeId src, NodeId dst);
    Delivery sequence_transfer(NodeId src, NodeId dst, std::size_t size,
                               std::uint64_t send_us, bool try_coalesce);

    LinkParams default_link_;
    std::map<std::pair<NodeId, NodeId>, LinkParams> links_;
    mutable std::map<std::pair<NodeId, NodeId>, LinkStats> stats_;
    std::map<std::pair<NodeId, NodeId>, std::uint64_t> busy_until_;
    obs::Registry* registry_ = nullptr;
    obs::Journal* journal_ = nullptr;
    /// Last observed fault-plan down-state per directed link (journal
    /// edge detection only; absent = never evaluated, first observation
    /// of a down link records an entering edge).
    std::map<std::pair<NodeId, NodeId>, bool> fault_seen_;
    std::map<std::pair<NodeId, NodeId>, LinkMetrics> link_metrics_;
    std::uint64_t clock_us_ = 0;
    /// Watermark value at the last reset_stats(); utilization_ppm
    /// denominators measure elapsed time from here.
    std::uint64_t stats_epoch_us_ = 0;
    /// Each directed link draws drop decisions from its own stream
    /// (seeded from `seed_` and the link endpoints), so lossy traffic on
    /// one link can never perturb the sequence another link sees.
    std::uint64_t seed_;
    std::map<std::pair<NodeId, NodeId>, Rng> link_rng_;
    FaultPlan fault_plan_;
    CompletionSink completion_sink_;
};

}  // namespace rafda::net
