// SimNetwork — a deterministic in-process network between address spaces.
//
// The middleware runs all nodes in one OS process (each with its own VM and
// heap), so the "network" models cost and failure rather than moving bytes:
// each transfer advances a virtual clock by latency + size/bandwidth and is
// accounted per link; fault injection drops messages deterministically from
// a seeded PRNG.  Experiments read the virtual clock so results are exactly
// reproducible.
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "obs/metrics.hpp"
#include "support/bytes.hpp"
#include "support/rng.hpp"

namespace rafda::net {

using NodeId = std::int32_t;

struct LinkParams {
    /// One-way propagation delay in microseconds.
    std::uint64_t latency_us = 100;
    /// Bytes per microsecond (e.g. 125 = 1 Gbit/s).
    double bandwidth_bytes_per_us = 125.0;
    /// Probability a transfer is lost.
    double drop_probability = 0.0;
};

struct LinkStats {
    std::uint64_t messages = 0;
    std::uint64_t bytes = 0;
    std::uint64_t drops = 0;
};

class SimNetwork {
public:
    explicit SimNetwork(std::uint64_t seed = 1);

    /// Default parameters for links without an explicit setting.
    void set_default_link(LinkParams params);
    /// Directed link override.
    void set_link(NodeId src, NodeId dst, LinkParams params);
    const LinkParams& link(NodeId src, NodeId dst) const;

    /// Accounts one transfer of `size` bytes; returns the transfer delay in
    /// microseconds and advances the virtual clock by it, or nullopt when
    /// the message was dropped (fault injection).  A drop still advances
    /// the clock by the link's latency — losing a message costs the
    /// propagation delay before the sender can observe the failure.
    std::optional<std::uint64_t> transfer(NodeId src, NodeId dst, std::size_t size);

    /// Advances the virtual clock by a compute cost (e.g. codec CPU time).
    void charge_compute(std::uint64_t us);

    std::uint64_t now_us() const noexcept { return clock_us_; }

    const LinkStats& stats(NodeId src, NodeId dst) const;
    LinkStats total_stats() const;
    void reset_stats();

    /// Mirrors per-link accounting into `registry` as counters named
    /// net.link.<src>.<dst>.{messages,bytes,drops}.  Pass nullptr to
    /// detach.  The registry must outlive the network (or be detached).
    void attach_metrics(obs::Registry* registry);

private:
    struct LinkMetrics {
        obs::Counter* messages = nullptr;
        obs::Counter* bytes = nullptr;
        obs::Counter* drops = nullptr;
    };
    LinkMetrics& link_metrics(NodeId src, NodeId dst);

    LinkParams default_link_;
    std::map<std::pair<NodeId, NodeId>, LinkParams> links_;
    mutable std::map<std::pair<NodeId, NodeId>, LinkStats> stats_;
    obs::Registry* registry_ = nullptr;
    std::map<std::pair<NodeId, NodeId>, LinkMetrics> link_metrics_;
    std::uint64_t clock_us_ = 0;
    Rng rng_;
};

}  // namespace rafda::net
