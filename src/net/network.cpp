#include "net/network.hpp"

#include <algorithm>
#include <cmath>
#include <string>

namespace rafda::net {

SimNetwork::SimNetwork(std::uint64_t seed) : seed_(seed) {}

Rng& SimNetwork::link_rng(NodeId src, NodeId dst) {
    auto it = link_rng_.find({src, dst});
    if (it == link_rng_.end()) {
        const std::uint64_t salt =
            (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32) |
            static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst));
        it = link_rng_.emplace(std::make_pair(src, dst), Rng(Rng::mix(seed_, salt)))
                 .first;
    }
    return it->second;
}

void SimNetwork::set_default_link(LinkParams params) { default_link_ = params; }

void SimNetwork::set_link(NodeId src, NodeId dst, LinkParams params) {
    links_[{src, dst}] = params;
}

const LinkParams& SimNetwork::link(NodeId src, NodeId dst) const {
    auto it = links_.find({src, dst});
    return it == links_.end() ? default_link_ : it->second;
}

SimNetwork::LinkMetrics& SimNetwork::link_metrics(NodeId src, NodeId dst) {
    auto it = link_metrics_.find({src, dst});
    if (it == link_metrics_.end()) {
        const std::string prefix = "net.link." + std::to_string(src) + "." +
                                   std::to_string(dst) + ".";
        LinkMetrics m;
        m.messages = &registry_->counter(prefix + "messages");
        m.bytes = &registry_->counter(prefix + "bytes");
        m.drops = &registry_->counter(prefix + "drops");
        m.coalesced = &registry_->counter(prefix + "coalesced");
        m.busy_us = &registry_->counter(prefix + "busy_us");
        m.utilization_ppm = &registry_->gauge(prefix + "utilization_ppm");
        it = link_metrics_.emplace(std::make_pair(src, dst), m).first;
    }
    return it->second;
}

void SimNetwork::attach_metrics(obs::Registry* registry) {
    registry_ = registry;
    link_metrics_.clear();
}

Delivery SimNetwork::transfer_at(NodeId src, NodeId dst, std::size_t size,
                                 std::uint64_t send_us) {
    return sequence_transfer(src, dst, size, send_us, false);
}

Delivery SimNetwork::transfer_coalesced_at(NodeId src, NodeId dst, std::size_t size,
                                           std::uint64_t send_us) {
    return sequence_transfer(src, dst, size, send_us, true);
}

Delivery SimNetwork::sequence_transfer(NodeId src, NodeId dst, std::size_t size,
                                       std::uint64_t send_us, bool try_coalesce) {
    const LinkParams& params = link(src, dst);
    LinkStats& stats = stats_[{src, dst}];
    LinkMetrics* metrics = registry_ ? &link_metrics(src, dst) : nullptr;
    std::uint64_t& busy_until = busy_until_[{src, dst}];
    // The channel carries one message at a time: a transfer sent while the
    // link is occupied queues behind the in-flight one — unless the caller
    // asked to coalesce, in which case the bytes join the in-flight frame
    // at its tail instead of waiting for the link to free up.
    const bool coalesce = try_coalesce && send_us < busy_until;
    const std::uint64_t depart = std::max(send_us, busy_until);
    // Scheduled faults are evaluated at the departure time. A down/flapped
    // link loses the message without consuming a PRNG draw (pure function
    // of virtual time); a drop-rate override substitutes its probability
    // into the same per-link stream the configured rate uses. Rng::chance
    // never draws for p <= 0, so a fault-free link's stream is untouched.
    bool lost = fault_plan_.link_down(src, dst, depart);
    if (journal_ && journal_->enabled()) {
        // Flight-recorder edge detection: record the transition the first
        // time a transfer observes this link's down-state change.  Pure
        // observation — no clock advance, no PRNG draw.
        auto [it, inserted] = fault_seen_.try_emplace({src, dst}, false);
        if (it->second != lost || (inserted && lost)) {
            journal_->record(obs::JournalEvent::Kind::FaultEdge, depart, src, dst,
                             lost ? 1 : 0, 0, "link");
        }
        it->second = lost;
    }
    if (!lost) {
        const double p = fault_plan_.drop_override(src, dst, depart)
                             .value_or(params.drop_probability);
        lost = link_rng(src, dst).chance(p);
    }
    if (lost) {
        ++stats.drops;
        // A lost message still occupied the link before it died: charge
        // the propagation delay so loss is not free in virtual time (a
        // free drop would bias adaptation experiments toward lossy links).
        const std::uint64_t fail_at = depart + params.latency_us;
        stats.busy_us += fail_at - depart;
        busy_until = fail_at;
        observe(fail_at);
        if (metrics) {
            metrics->drops->add();
            metrics->busy_us->add(params.latency_us);
            metrics->utilization_ppm->set(static_cast<std::int64_t>(
                stats.busy_us * 1'000'000 /
                std::max<std::uint64_t>(1, clock_us_ - stats_epoch_us_)));
        }
        if (completion_sink_) completion_sink_(src, dst, fail_at, false);
        return Delivery{false, fail_at, coalesce};
    }
    if (coalesce)
        ++stats.coalesced;
    else
        ++stats.messages;
    stats.bytes += size;
    double serialization =
        params.bandwidth_bytes_per_us > 0
            ? static_cast<double>(size) / params.bandwidth_bytes_per_us
            : 0.0;
    // A coalesced entry rides the in-flight frame: it pays its own
    // serialization time but shares the frame's propagation delay.
    const std::uint64_t arrival =
        depart + (coalesce ? 0 : params.latency_us) +
        static_cast<std::uint64_t>(std::llround(serialization));
    stats.busy_us += arrival - depart;
    busy_until = arrival;
    observe(arrival);
    if (metrics) {
        if (coalesce)
            metrics->coalesced->add();
        else
            metrics->messages->add();
        metrics->bytes->add(size);
        metrics->busy_us->add(arrival - depart);
        metrics->utilization_ppm->set(static_cast<std::int64_t>(
            stats.busy_us * 1'000'000 /
            std::max<std::uint64_t>(1, clock_us_ - stats_epoch_us_)));
    }
    if (completion_sink_) completion_sink_(src, dst, arrival, true);
    return Delivery{true, arrival, coalesce};
}

std::optional<std::uint64_t> SimNetwork::transfer(NodeId src, NodeId dst,
                                                  std::size_t size) {
    const std::uint64_t send = clock_us_;
    Delivery d = transfer_at(src, dst, size, send);
    // transfer_at already advanced the watermark to the event time, which
    // for a send at the watermark is exactly the old global-clock advance.
    if (!d.delivered) return std::nullopt;
    return d.at_us - send;
}

void SimNetwork::charge_compute(std::uint64_t us) { clock_us_ += us; }

std::uint64_t SimNetwork::link_busy_until(NodeId src, NodeId dst) const {
    auto it = busy_until_.find({src, dst});
    return it == busy_until_.end() ? 0 : it->second;
}

const LinkStats& SimNetwork::stats(NodeId src, NodeId dst) const {
    return stats_[{src, dst}];
}

LinkStats SimNetwork::total_stats() const {
    LinkStats total;
    for (const auto& [_, s] : stats_) {
        total.messages += s.messages;
        total.bytes += s.bytes;
        total.drops += s.drops;
        total.coalesced += s.coalesced;
        total.busy_us += s.busy_us;
    }
    return total;
}

void SimNetwork::visit_links(
    const std::function<void(NodeId, NodeId, const LinkStats&)>& fn) const {
    for (const auto& [key, s] : stats_) fn(key.first, key.second, s);
}

void SimNetwork::reset_stats() {
    stats_.clear();
    // Utilization after a reset measures busy time over virtual time
    // elapsed *since the reset* — without this epoch the denominator keeps
    // growing from t=0 and post-reset utilization is biased toward zero.
    // busy_until_ is left alone: channel occupancy is physical link state,
    // so a message in flight still blocks the link across a reset.
    stats_epoch_us_ = clock_us_;
    // Keep the registry mirrors in step: they are cumulative shadows of
    // stats_, so clearing one but not the other would make `rafdac stats`
    // diverge from total_stats() after a reset.
    for (auto& [_, m] : link_metrics_) {
        m.messages->reset();
        m.bytes->reset();
        m.drops->reset();
        m.coalesced->reset();
        m.busy_us->reset();
        m.utilization_ppm->reset();
    }
}

}  // namespace rafda::net
