#include "net/network.hpp"

#include <cmath>
#include <string>

namespace rafda::net {

SimNetwork::SimNetwork(std::uint64_t seed) : rng_(seed) {}

void SimNetwork::set_default_link(LinkParams params) { default_link_ = params; }

void SimNetwork::set_link(NodeId src, NodeId dst, LinkParams params) {
    links_[{src, dst}] = params;
}

const LinkParams& SimNetwork::link(NodeId src, NodeId dst) const {
    auto it = links_.find({src, dst});
    return it == links_.end() ? default_link_ : it->second;
}

SimNetwork::LinkMetrics& SimNetwork::link_metrics(NodeId src, NodeId dst) {
    auto it = link_metrics_.find({src, dst});
    if (it == link_metrics_.end()) {
        const std::string prefix = "net.link." + std::to_string(src) + "." +
                                   std::to_string(dst) + ".";
        LinkMetrics m;
        m.messages = &registry_->counter(prefix + "messages");
        m.bytes = &registry_->counter(prefix + "bytes");
        m.drops = &registry_->counter(prefix + "drops");
        it = link_metrics_.emplace(std::make_pair(src, dst), m).first;
    }
    return it->second;
}

void SimNetwork::attach_metrics(obs::Registry* registry) {
    registry_ = registry;
    link_metrics_.clear();
}

std::optional<std::uint64_t> SimNetwork::transfer(NodeId src, NodeId dst,
                                                  std::size_t size) {
    const LinkParams& params = link(src, dst);
    LinkStats& stats = stats_[{src, dst}];
    LinkMetrics* metrics = registry_ ? &link_metrics(src, dst) : nullptr;
    if (rng_.chance(params.drop_probability)) {
        ++stats.drops;
        if (metrics) metrics->drops->add();
        // A lost message still occupied the link before it died: charge
        // the propagation delay so loss is not free in virtual time (a
        // free drop would bias adaptation experiments toward lossy links).
        clock_us_ += params.latency_us;
        return std::nullopt;
    }
    ++stats.messages;
    stats.bytes += size;
    if (metrics) {
        metrics->messages->add();
        metrics->bytes->add(size);
    }
    double serialization =
        params.bandwidth_bytes_per_us > 0
            ? static_cast<double>(size) / params.bandwidth_bytes_per_us
            : 0.0;
    std::uint64_t delay =
        params.latency_us + static_cast<std::uint64_t>(std::llround(serialization));
    clock_us_ += delay;
    return delay;
}

void SimNetwork::charge_compute(std::uint64_t us) { clock_us_ += us; }

const LinkStats& SimNetwork::stats(NodeId src, NodeId dst) const {
    return stats_[{src, dst}];
}

LinkStats SimNetwork::total_stats() const {
    LinkStats total;
    for (const auto& [_, s] : stats_) {
        total.messages += s.messages;
        total.bytes += s.bytes;
        total.drops += s.drops;
    }
    return total;
}

void SimNetwork::reset_stats() { stats_.clear(); }

}  // namespace rafda::net
