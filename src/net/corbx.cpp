#include "net/corbx.hpp"

#include "support/error.hpp"

namespace rafda::net {

namespace {

constexpr char kMagic[4] = {'C', 'R', 'B', 'X'};
constexpr std::uint8_t kVersionMajor = 1;
constexpr std::uint8_t kVersionMinor = 0;
constexpr std::uint8_t kTypeRequest = 0;
constexpr std::uint8_t kTypeReply = 1;
// Header flags bit: the reliability extension (attempt + deadline) follows
// the header. Only set when either field is nonzero, so base-protocol
// traffic — and the fault-free wire sizes in EXPERIMENTS.md E5 — is
// byte-identical to the original framing.
constexpr std::uint8_t kFlagReliable = 0x01;

/// CDR-style writer: pads to 4-byte alignment before multi-byte values.
/// Wraps the caller's ByteWriter (in the RPC path a pooled frame) and
/// aligns relative to where this message started, so the encoding is the
/// same whether the frame buffer was fresh or already held other bytes.
class CdrWriter {
public:
    explicit CdrWriter(ByteWriter& w) : w_(w), base_(w.size()) {}
    void align4() {
        while ((w_.size() - base_) % 4 != 0) w_.u8(0);
    }
    void u8(std::uint8_t v) { w_.u8(v); }
    void u32(std::uint32_t v) {
        align4();
        w_.u32(v);
    }
    void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
    void u64(std::uint64_t v) {
        align4();
        w_.u64(v);
    }
    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
    void f64(double v) {
        align4();
        w_.f64(v);
    }
    void str(std::string_view s) {
        u32(static_cast<std::uint32_t>(s.size()));
        w_.text(s);
    }

private:
    ByteWriter& w_;
    std::size_t base_;
};

class CdrReader {
public:
    explicit CdrReader(const Bytes& data) : r_(data) {}
    void align4() {
        while (consumed_ % 4 != 0) {
            r_.u8();
            ++consumed_;
        }
    }
    std::uint8_t u8() {
        ++consumed_;
        return r_.u8();
    }
    std::uint32_t u32() {
        align4();
        consumed_ += 4;
        return r_.u32();
    }
    std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
    std::uint64_t u64() {
        align4();
        consumed_ += 8;
        return r_.u64();
    }
    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
    double f64() {
        align4();
        consumed_ += 8;
        return r_.f64();
    }
    std::string str() {
        std::uint32_t n = u32();
        std::string out;
        out.reserve(n);
        for (std::uint32_t k = 0; k < n; ++k) out += static_cast<char>(u8());
        return out;
    }
    bool at_end() const { return r_.at_end(); }

private:
    ByteReader r_;
    std::size_t consumed_ = 0;
};

void write_value(CdrWriter& w, const MarshalledValue& v) {
    w.u8(static_cast<std::uint8_t>(v.tag));
    switch (v.tag) {
        case ValueTag::Null: break;
        case ValueTag::Bool: w.u8(v.b ? 1 : 0); break;
        case ValueTag::Int: w.i32(v.i); break;
        case ValueTag::Long: w.i64(v.j); break;
        case ValueTag::Double: w.f64(v.d); break;
        case ValueTag::Str: w.str(v.s); break;
        case ValueTag::Ref:
            w.i32(v.ref_node);
            w.u64(v.ref_oid);
            w.str(v.ref_class);
            break;
    }
}

MarshalledValue read_value(CdrReader& r) {
    MarshalledValue v;
    std::uint8_t tag = r.u8();
    if (tag > static_cast<std::uint8_t>(ValueTag::Ref))
        throw CodecError("corbx: bad value tag");
    v.tag = static_cast<ValueTag>(tag);
    switch (v.tag) {
        case ValueTag::Null: break;
        case ValueTag::Bool: v.b = r.u8() != 0; break;
        case ValueTag::Int: v.i = r.i32(); break;
        case ValueTag::Long: v.j = r.i64(); break;
        case ValueTag::Double: v.d = r.f64(); break;
        case ValueTag::Str: v.s = r.str(); break;
        case ValueTag::Ref:
            v.ref_node = r.i32();
            v.ref_oid = r.u64();
            v.ref_class = r.str();
            break;
    }
    return v;
}

void write_header(CdrWriter& w, std::uint8_t type, std::uint8_t flags = 0) {
    for (char c : kMagic) w.u8(static_cast<std::uint8_t>(c));
    w.u8(kVersionMajor);
    w.u8(kVersionMinor);
    w.u8(type);
    w.u8(flags);
    w.u32(0);  // body length (filled conceptually; unused by the simulator)
}

std::uint8_t read_header(CdrReader& r, std::uint8_t expected_type) {
    for (char c : kMagic)
        if (r.u8() != static_cast<std::uint8_t>(c)) throw CodecError("corbx: bad magic");
    if (r.u8() != kVersionMajor || r.u8() != kVersionMinor)
        throw CodecError("corbx: unsupported version");
    if (r.u8() != expected_type) throw CodecError("corbx: unexpected message type");
    std::uint8_t flags = r.u8();
    r.u32();  // body length
    return flags;
}

}  // namespace

const std::string& CorbxCodec::protocol() const {
    static const std::string name = "CORBA";
    return name;
}

void CorbxCodec::encode_request_into(const CallRequest& req, ByteWriter& out) const {
    CdrWriter w(out);
    const bool reliable = req.attempt != 0 || req.deadline_us != 0;
    write_header(w, kTypeRequest, reliable ? kFlagReliable : 0);
    if (reliable) {
        w.u32(req.attempt);
        w.u64(req.deadline_us);
    }
    w.u8(static_cast<std::uint8_t>(req.kind));
    w.u64(req.request_id);
    w.u64(req.trace_id);
    w.u64(req.parent_span);
    w.i32(req.src_node);
    w.u64(req.target_oid);
    w.str(req.cls);
    w.str(req.method);
    w.str(req.desc);
    w.u32(static_cast<std::uint32_t>(req.args.size()));
    for (const MarshalledValue& a : req.args) write_value(w, a);
}

CallRequest CorbxCodec::decode_request(const Bytes& data) const {
    CdrReader r(data);
    const std::uint8_t flags = read_header(r, kTypeRequest);
    CallRequest req;
    if (flags & kFlagReliable) {
        req.attempt = r.u32();
        req.deadline_us = r.u64();
    }
    std::uint8_t kind = r.u8();
    if (kind > static_cast<std::uint8_t>(RequestKind::Discover))
        throw CodecError("corbx: bad request kind");
    req.kind = static_cast<RequestKind>(kind);
    req.request_id = r.u64();
    req.trace_id = r.u64();
    req.parent_span = r.u64();
    req.src_node = r.i32();
    req.target_oid = r.u64();
    req.cls = r.str();
    req.method = r.str();
    req.desc = r.str();
    std::uint32_t n = r.u32();
    req.args.reserve(n);
    for (std::uint32_t k = 0; k < n; ++k) req.args.push_back(read_value(r));
    return req;
}

void CorbxCodec::encode_reply_into(const CallReply& reply, ByteWriter& out) const {
    CdrWriter w(out);
    write_header(w, kTypeReply);
    w.u64(reply.request_id);
    w.u8(reply.is_fault ? 1 : 0);
    if (reply.is_fault) {
        w.str(reply.fault_class);
        w.str(reply.fault_msg);
    } else {
        write_value(w, reply.result);
    }
}

CallReply CorbxCodec::decode_reply(const Bytes& data) const {
    CdrReader r(data);
    read_header(r, kTypeReply);
    CallReply reply;
    reply.request_id = r.u64();
    reply.is_fault = r.u8() != 0;
    if (reply.is_fault) {
        reply.fault_class = r.str();
        reply.fault_msg = r.str();
    } else {
        reply.result = read_value(r);
    }
    return reply;
}

}  // namespace rafda::net
