// Protocol codec interface.
//
// One codec per proxy protocol (paper Sec 2: "various proxies implementing
// the interface for a class provide alternative remote versions, e.g.
// SOAP-based, RMI-based, CORBA-based").  The shipped codecs are:
//   RMIB  — compact length-prefixed binary (the RMI stand-in)
//   SOAPX — verbose XML-style text (the SOAP stand-in)
// Both carry exactly the same message model; they differ in encoding cost
// and wire size, which is what experiment E5 measures.
#pragma once

#include <memory>
#include <string>

#include "net/message.hpp"
#include "support/bytes.hpp"

namespace rafda::net {

class Codec {
public:
    virtual ~Codec() = default;

    /// Protocol suffix used in generated proxy class names ("RMI", "SOAP").
    virtual const std::string& protocol() const = 0;

    virtual Bytes encode_request(const CallRequest& req) const = 0;
    virtual CallRequest decode_request(const Bytes& data) const = 0;
    virtual Bytes encode_reply(const CallReply& reply) const = 0;
    virtual CallReply decode_reply(const Bytes& data) const = 0;

    /// Simulated per-byte CPU cost of encoding/decoding, in nanoseconds;
    /// lets experiments model SOAP's parsing overhead without real XML
    /// libraries dominating wall-clock noise.
    virtual double cpu_cost_ns_per_byte() const = 0;
};

/// Factory for the built-in codecs; throws CodecError for unknown names.
std::unique_ptr<Codec> make_codec(const std::string& protocol);

}  // namespace rafda::net
