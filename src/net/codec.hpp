// Protocol codec interface.
//
// One codec per proxy protocol (paper Sec 2: "various proxies implementing
// the interface for a class provide alternative remote versions, e.g.
// SOAP-based, RMI-based, CORBA-based").  The shipped codecs are:
//   RMIB  — compact length-prefixed binary (the RMI stand-in)
//   SOAPX — verbose XML-style text (the SOAP stand-in)
// Both carry exactly the same message model; they differ in encoding cost
// and wire size, which is what experiment E5 measures.
//
// Encoding is zero-copy: the `*_into` methods append the framed message to
// a caller-supplied ByteWriter, which in the RPC path borrows a frame from
// the System's BufferPool (DESIGN.md §17).  The Bytes-returning wrappers
// remain for tests, tools and the migration path.
#pragma once

#include <memory>
#include <string>

#include "net/message.hpp"
#include "support/bytes.hpp"

namespace rafda::net {

/// Frame-level context shared by every call coalesced into one batch
/// frame on a directed link: the sending node and the request id of the
/// frame-opening call.  Batch entries omit what the context pins down and
/// are only decodable against the same context the encoder used — which
/// the receiving end of a link has, because it saw the frame open.
struct BatchContext {
    std::int32_t src_node = 0;
    std::uint64_t base_request_id = 0;
};

class Codec {
public:
    virtual ~Codec() = default;

    /// Protocol suffix used in generated proxy class names ("RMI", "SOAP").
    virtual const std::string& protocol() const = 0;

    /// Appends the framed request/reply to `w` with no intermediate copy.
    virtual void encode_request_into(const CallRequest& req, ByteWriter& w) const = 0;
    virtual void encode_reply_into(const CallReply& reply, ByteWriter& w) const = 0;

    Bytes encode_request(const CallRequest& req) const {
        ByteWriter w;
        encode_request_into(req, w);
        return w.take();
    }
    Bytes encode_reply(const CallReply& reply) const {
        ByteWriter w;
        encode_reply_into(reply, w);
        return w.take();
    }

    virtual CallRequest decode_request(const Bytes& data) const = 0;
    virtual CallReply decode_reply(const Bytes& data) const = 0;

    /// True when the protocol defines a compact batch-entry framing for
    /// calls coalesced into an open frame on a busy link (DESIGN.md §17).
    /// The default is per-call framing only: such protocols still share
    /// the pooled buffers, but every request travels as its own frame.
    virtual bool supports_batch_entries() const { return false; }
    /// Appends one batch-continuation entry for `req` against `ctx`.
    /// Throws CodecError unless supports_batch_entries().
    virtual void encode_batch_entry(const CallRequest& req, const BatchContext& ctx,
                                    ByteWriter& w) const;
    /// Decodes a batch-continuation entry against the same context the
    /// encoder used.  Throws CodecError unless supports_batch_entries().
    virtual CallRequest decode_batch_entry(const Bytes& data,
                                           const BatchContext& ctx) const;

    /// Simulated per-byte CPU cost of encoding/decoding, in nanoseconds;
    /// lets experiments model SOAP's parsing overhead without real XML
    /// libraries dominating wall-clock noise.
    virtual double cpu_cost_ns_per_byte() const = 0;
};

/// Factory for the built-in codecs; throws CodecError for unknown names.
std::unique_ptr<Codec> make_codec(const std::string& protocol);

}  // namespace rafda::net
