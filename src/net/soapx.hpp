// SOAPX — the verbose XML-style text protocol (SOAP stand-in).
//
// Example request on the wire:
//
//   <Envelope><Body>
//     <Request kind="invoke" id="7" src="0" target="12" class=""
//              method="m" desc="(J)I">
//       <arg type="long">5</arg>
//       <arg type="ref" node="1" oid="3" class="C"></arg>
//     </Request>
//   </Body></Envelope>
//
// Compared to RMIB the payload is several times larger and the per-byte
// processing cost higher — reproducing the RMI-vs-SOAP asymmetry the
// paper's protocol-pluggable proxies are designed around.
#pragma once

#include "net/codec.hpp"

namespace rafda::net {

class SoapxCodec final : public Codec {
public:
    const std::string& protocol() const override;
    void encode_request_into(const CallRequest& req, ByteWriter& w) const override;
    CallRequest decode_request(const Bytes& data) const override;
    void encode_reply_into(const CallReply& reply, ByteWriter& w) const override;
    CallReply decode_reply(const Bytes& data) const override;
    double cpu_cost_ns_per_byte() const override { return 4.0; }
};

}  // namespace rafda::net
