#include "net/codec.hpp"

#include "net/corbx.hpp"
#include "net/rmib.hpp"
#include "net/soapx.hpp"
#include "support/error.hpp"

namespace rafda::net {

void Codec::encode_batch_entry(const CallRequest&, const BatchContext&,
                               ByteWriter&) const {
    throw CodecError(protocol() + ": protocol has no batch-entry framing");
}

CallRequest Codec::decode_batch_entry(const Bytes&, const BatchContext&) const {
    throw CodecError(protocol() + ": protocol has no batch-entry framing");
}

std::unique_ptr<Codec> make_codec(const std::string& protocol) {
    if (protocol == "RMI") return std::make_unique<RmibCodec>();
    if (protocol == "SOAP") return std::make_unique<SoapxCodec>();
    if (protocol == "CORBA") return std::make_unique<CorbxCodec>();
    throw CodecError("unknown protocol: " + protocol);
}

}  // namespace rafda::net
