#include "net/soapx.hpp"

#include <cstdlib>
#include <map>
#include <sstream>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace rafda::net {

namespace {

// ---- encoding -----------------------------------------------------------

const char* tag_name(ValueTag t) {
    switch (t) {
        case ValueTag::Null: return "null";
        case ValueTag::Bool: return "bool";
        case ValueTag::Int: return "int";
        case ValueTag::Long: return "long";
        case ValueTag::Double: return "double";
        case ValueTag::Str: return "string";
        case ValueTag::Ref: return "ref";
    }
    return "?";
}

ValueTag tag_from_name(const std::string& name) {
    if (name == "null") return ValueTag::Null;
    if (name == "bool") return ValueTag::Bool;
    if (name == "int") return ValueTag::Int;
    if (name == "long") return ValueTag::Long;
    if (name == "double") return ValueTag::Double;
    if (name == "string") return ValueTag::Str;
    if (name == "ref") return ValueTag::Ref;
    throw CodecError("soapx: unknown value type " + name);
}

void encode_value(std::ostringstream& os, const char* element,
                  const MarshalledValue& v) {
    os << "<" << element << " type=\"" << tag_name(v.tag) << "\"";
    switch (v.tag) {
        case ValueTag::Ref:
            os << " node=\"" << v.ref_node << "\" oid=\"" << v.ref_oid << "\" class=\""
               << xml_escape(v.ref_class) << "\">";
            break;
        case ValueTag::Null:
            os << ">";
            break;
        case ValueTag::Bool:
            os << ">" << (v.b ? "true" : "false");
            break;
        case ValueTag::Int:
            os << ">" << v.i;
            break;
        case ValueTag::Long:
            os << ">" << v.j;
            break;
        case ValueTag::Double:
            os << ">";
            os.precision(17);
            os << v.d;
            break;
        case ValueTag::Str:
            os << ">" << xml_escape(v.s);
            break;
    }
    os << "</" << element << ">";
}

const char* kind_name(RequestKind k) {
    switch (k) {
        case RequestKind::Invoke: return "invoke";
        case RequestKind::Create: return "create";
        case RequestKind::Discover: return "discover";
    }
    return "?";
}

RequestKind kind_from_name(const std::string& name) {
    if (name == "invoke") return RequestKind::Invoke;
    if (name == "create") return RequestKind::Create;
    if (name == "discover") return RequestKind::Discover;
    throw CodecError("soapx: unknown request kind " + name);
}

// ---- a tiny element parser (handles exactly what we emit) ---------------

struct Element {
    std::string name;
    std::map<std::string, std::string> attrs;
    std::string text;                // concatenated character data
    std::vector<Element> children;

    const std::string& attr(const std::string& key) const {
        auto it = attrs.find(key);
        if (it == attrs.end()) throw CodecError("soapx: missing attribute " + key);
        return it->second;
    }

    /// Optional attribute: `fallback` when absent (reliability extension
    /// attributes are only emitted when nonzero).
    const std::string& attr_or(const std::string& key,
                               const std::string& fallback) const {
        auto it = attrs.find(key);
        return it == attrs.end() ? fallback : it->second;
    }
};

class Scanner {
public:
    explicit Scanner(const std::string& text) : text_(text) {}

    Element parse_document() {
        Element root = parse_element();
        skip_ws();
        if (pos_ != text_.size()) throw CodecError("soapx: trailing content");
        return root;
    }

private:
    void skip_ws() {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    [[noreturn]] void fail(const std::string& what) {
        throw CodecError("soapx: " + what + " at offset " + std::to_string(pos_));
    }

    Element parse_element() {
        skip_ws();
        if (pos_ >= text_.size() || text_[pos_] != '<') fail("expected '<'");
        ++pos_;
        Element el;
        while (pos_ < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '_'))
            el.name += text_[pos_++];
        if (el.name.empty()) fail("empty element name");
        // Attributes.
        while (true) {
            skip_ws();
            if (pos_ >= text_.size()) fail("unterminated tag");
            if (text_[pos_] == '>') {
                ++pos_;
                break;
            }
            if (text_[pos_] == '/') {
                // self-closing
                ++pos_;
                if (pos_ >= text_.size() || text_[pos_] != '>') fail("bad self-close");
                ++pos_;
                return el;
            }
            std::string key;
            while (pos_ < text_.size() && text_[pos_] != '=' &&
                   !std::isspace(static_cast<unsigned char>(text_[pos_])))
                key += text_[pos_++];
            skip_ws();
            if (pos_ >= text_.size() || text_[pos_] != '=') fail("expected '='");
            ++pos_;
            skip_ws();
            if (pos_ >= text_.size() || text_[pos_] != '"') fail("expected '\"'");
            ++pos_;
            std::string value;
            while (pos_ < text_.size() && text_[pos_] != '"') value += text_[pos_++];
            if (pos_ >= text_.size()) fail("unterminated attribute");
            ++pos_;
            el.attrs[key] = xml_unescape(value);
        }
        // Content: text and child elements until matching close tag.
        while (true) {
            if (pos_ >= text_.size()) fail("unterminated element " + el.name);
            if (text_[pos_] == '<') {
                if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '/') {
                    pos_ += 2;
                    std::string close;
                    while (pos_ < text_.size() && text_[pos_] != '>') close += text_[pos_++];
                    if (pos_ >= text_.size()) fail("unterminated close tag");
                    ++pos_;
                    if (close != el.name)
                        fail("mismatched close tag " + close + " for " + el.name);
                    el.text = xml_unescape(el.text);
                    return el;
                }
                el.children.push_back(parse_element());
            } else {
                el.text += text_[pos_++];
            }
        }
    }

    const std::string& text_;
    std::size_t pos_ = 0;
};

MarshalledValue decode_value(const Element& el) {
    MarshalledValue v;
    v.tag = tag_from_name(el.attr("type"));
    switch (v.tag) {
        case ValueTag::Null: break;
        case ValueTag::Bool: v.b = el.text == "true"; break;
        case ValueTag::Int:
            v.i = static_cast<std::int32_t>(std::strtol(el.text.c_str(), nullptr, 10));
            break;
        case ValueTag::Long: v.j = std::strtoll(el.text.c_str(), nullptr, 10); break;
        case ValueTag::Double: v.d = std::strtod(el.text.c_str(), nullptr); break;
        case ValueTag::Str: v.s = el.text; break;
        case ValueTag::Ref:
            v.ref_node =
                static_cast<std::int32_t>(std::strtol(el.attr("node").c_str(), nullptr, 10));
            v.ref_oid = std::strtoull(el.attr("oid").c_str(), nullptr, 10);
            v.ref_class = el.attr("class");
            break;
    }
    return v;
}

const Element& only_child(const Element& el, const char* name) {
    if (el.children.size() != 1 || el.children[0].name != name)
        throw CodecError(std::string("soapx: expected single <") + name + "> in <" +
                         el.name + ">");
    return el.children[0];
}

std::string to_string_payload(const Bytes& data) {
    return std::string(data.begin(), data.end());
}

Bytes to_bytes(const std::string& s) { return Bytes(s.begin(), s.end()); }

}  // namespace

const std::string& SoapxCodec::protocol() const {
    static const std::string name = "SOAP";
    return name;
}

Bytes SoapxCodec::encode_request(const CallRequest& req) const {
    std::ostringstream os;
    os << "<Envelope><Body><Request kind=\"" << kind_name(req.kind) << "\" id=\""
       << req.request_id << "\" trace=\"" << req.trace_id << "\" span=\""
       << req.parent_span << "\" src=\"" << req.src_node << "\" target=\""
       << req.target_oid << "\" class=\"" << xml_escape(req.cls) << "\" method=\""
       << xml_escape(req.method) << "\" desc=\"" << xml_escape(req.desc) << "\"";
    // Reliability attributes only appear when set, so base-protocol
    // traffic keeps its original byte size (EXPERIMENTS.md E5).
    if (req.attempt != 0) os << " attempt=\"" << req.attempt << "\"";
    if (req.deadline_us != 0) os << " deadline=\"" << req.deadline_us << "\"";
    os << ">";
    for (const MarshalledValue& a : req.args) encode_value(os, "arg", a);
    os << "</Request></Body></Envelope>";
    return to_bytes(os.str());
}

CallRequest SoapxCodec::decode_request(const Bytes& data) const {
    std::string text = to_string_payload(data);
    Element envelope = Scanner(text).parse_document();
    if (envelope.name != "Envelope") throw CodecError("soapx: expected <Envelope>");
    const Element& request = only_child(only_child(envelope, "Body"), "Request");
    CallRequest req;
    req.kind = kind_from_name(request.attr("kind"));
    req.request_id = std::strtoull(request.attr("id").c_str(), nullptr, 10);
    req.trace_id = std::strtoull(request.attr("trace").c_str(), nullptr, 10);
    req.parent_span = std::strtoull(request.attr("span").c_str(), nullptr, 10);
    req.src_node =
        static_cast<std::int32_t>(std::strtol(request.attr("src").c_str(), nullptr, 10));
    req.target_oid = std::strtoull(request.attr("target").c_str(), nullptr, 10);
    req.cls = request.attr("class");
    req.method = request.attr("method");
    req.desc = request.attr("desc");
    static const std::string kZero = "0";
    req.attempt = static_cast<std::uint32_t>(
        std::strtoul(request.attr_or("attempt", kZero).c_str(), nullptr, 10));
    req.deadline_us =
        std::strtoull(request.attr_or("deadline", kZero).c_str(), nullptr, 10);
    for (const Element& child : request.children) {
        if (child.name != "arg") throw CodecError("soapx: unexpected <" + child.name + ">");
        req.args.push_back(decode_value(child));
    }
    return req;
}

Bytes SoapxCodec::encode_reply(const CallReply& reply) const {
    std::ostringstream os;
    os << "<Envelope><Body><Reply id=\"" << reply.request_id << "\">";
    if (reply.is_fault) {
        os << "<fault class=\"" << xml_escape(reply.fault_class) << "\">"
           << xml_escape(reply.fault_msg) << "</fault>";
    } else {
        encode_value(os, "result", reply.result);
    }
    os << "</Reply></Body></Envelope>";
    return to_bytes(os.str());
}

CallReply SoapxCodec::decode_reply(const Bytes& data) const {
    std::string text = to_string_payload(data);
    Element envelope = Scanner(text).parse_document();
    if (envelope.name != "Envelope") throw CodecError("soapx: expected <Envelope>");
    const Element& reply_el = only_child(only_child(envelope, "Body"), "Reply");
    CallReply reply;
    reply.request_id = std::strtoull(reply_el.attr("id").c_str(), nullptr, 10);
    if (reply_el.children.size() != 1)
        throw CodecError("soapx: reply must have exactly one child");
    const Element& payload = reply_el.children[0];
    if (payload.name == "fault") {
        reply.is_fault = true;
        reply.fault_class = payload.attr("class");
        reply.fault_msg = payload.text;
    } else if (payload.name == "result") {
        reply.result = decode_value(payload);
    } else {
        throw CodecError("soapx: unexpected reply payload <" + payload.name + ">");
    }
    return reply;
}

}  // namespace rafda::net
