#include "net/soapx.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string_view>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace rafda::net {

namespace {

// ---- encoding -----------------------------------------------------------
//
// The document is appended piecewise to the caller's ByteWriter (in the
// RPC path a pooled frame), never assembled in an intermediate
// ostringstream.  The numeric formats below must stay byte-identical to
// the historical ostream output: std::to_string matches operator<< for
// integers, and "%.17g" matches a precision(17) defaultfloat stream for
// doubles (both pinned by SoapxFormat tests).

void append_text(ByteWriter& w, std::string_view v) { w.text(v); }

template <typename Int>
void append_int(ByteWriter& w, Int v) {
    w.text(std::to_string(v));
}

void append_double(ByteWriter& w, double v) {
    char buf[40];
    int n = std::snprintf(buf, sizeof buf, "%.17g", v);
    w.text(std::string_view(buf, static_cast<std::size_t>(n)));
}

const char* tag_name(ValueTag t) {
    switch (t) {
        case ValueTag::Null: return "null";
        case ValueTag::Bool: return "bool";
        case ValueTag::Int: return "int";
        case ValueTag::Long: return "long";
        case ValueTag::Double: return "double";
        case ValueTag::Str: return "string";
        case ValueTag::Ref: return "ref";
    }
    return "?";
}

ValueTag tag_from_name(const std::string& name) {
    if (name == "null") return ValueTag::Null;
    if (name == "bool") return ValueTag::Bool;
    if (name == "int") return ValueTag::Int;
    if (name == "long") return ValueTag::Long;
    if (name == "double") return ValueTag::Double;
    if (name == "string") return ValueTag::Str;
    if (name == "ref") return ValueTag::Ref;
    throw CodecError("soapx: unknown value type " + name);
}

void encode_value(ByteWriter& w, std::string_view element, const MarshalledValue& v) {
    append_text(w, "<");
    append_text(w, element);
    append_text(w, " type=\"");
    append_text(w, tag_name(v.tag));
    append_text(w, "\"");
    switch (v.tag) {
        case ValueTag::Ref:
            append_text(w, " node=\"");
            append_int(w, v.ref_node);
            append_text(w, "\" oid=\"");
            append_int(w, v.ref_oid);
            append_text(w, "\" class=\"");
            append_text(w, xml_escape(v.ref_class));
            append_text(w, "\">");
            break;
        case ValueTag::Null:
            append_text(w, ">");
            break;
        case ValueTag::Bool:
            append_text(w, ">");
            append_text(w, v.b ? "true" : "false");
            break;
        case ValueTag::Int:
            append_text(w, ">");
            append_int(w, v.i);
            break;
        case ValueTag::Long:
            append_text(w, ">");
            append_int(w, v.j);
            break;
        case ValueTag::Double:
            append_text(w, ">");
            append_double(w, v.d);
            break;
        case ValueTag::Str:
            append_text(w, ">");
            append_text(w, xml_escape(v.s));
            break;
    }
    append_text(w, "</");
    append_text(w, element);
    append_text(w, ">");
}

const char* kind_name(RequestKind k) {
    switch (k) {
        case RequestKind::Invoke: return "invoke";
        case RequestKind::Create: return "create";
        case RequestKind::Discover: return "discover";
    }
    return "?";
}

RequestKind kind_from_name(const std::string& name) {
    if (name == "invoke") return RequestKind::Invoke;
    if (name == "create") return RequestKind::Create;
    if (name == "discover") return RequestKind::Discover;
    throw CodecError("soapx: unknown request kind " + name);
}

// ---- a tiny element parser (handles exactly what we emit) ---------------

struct Element {
    std::string name;
    std::map<std::string, std::string> attrs;
    std::string text;                // concatenated character data
    std::vector<Element> children;

    const std::string& attr(const std::string& key) const {
        auto it = attrs.find(key);
        if (it == attrs.end()) throw CodecError("soapx: missing attribute " + key);
        return it->second;
    }

    /// Optional attribute: `fallback` when absent (reliability extension
    /// attributes are only emitted when nonzero).
    const std::string& attr_or(const std::string& key,
                               const std::string& fallback) const {
        auto it = attrs.find(key);
        return it == attrs.end() ? fallback : it->second;
    }
};

// The scanner walks the wire bytes in place (string_view over the Bytes
// payload) — decode no longer copies the document into a std::string
// before parsing.
class Scanner {
public:
    explicit Scanner(std::string_view text) : text_(text) {}

    Element parse_document() {
        Element root = parse_element();
        skip_ws();
        if (pos_ != text_.size()) throw CodecError("soapx: trailing content");
        return root;
    }

private:
    void skip_ws() {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    [[noreturn]] void fail(const std::string& what) {
        throw CodecError("soapx: " + what + " at offset " + std::to_string(pos_));
    }

    Element parse_element() {
        skip_ws();
        if (pos_ >= text_.size() || text_[pos_] != '<') fail("expected '<'");
        ++pos_;
        Element el;
        while (pos_ < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '_'))
            el.name += text_[pos_++];
        if (el.name.empty()) fail("empty element name");
        // Attributes.
        while (true) {
            skip_ws();
            if (pos_ >= text_.size()) fail("unterminated tag");
            if (text_[pos_] == '>') {
                ++pos_;
                break;
            }
            if (text_[pos_] == '/') {
                // self-closing
                ++pos_;
                if (pos_ >= text_.size() || text_[pos_] != '>') fail("bad self-close");
                ++pos_;
                return el;
            }
            std::string key;
            while (pos_ < text_.size() && text_[pos_] != '=' &&
                   !std::isspace(static_cast<unsigned char>(text_[pos_])))
                key += text_[pos_++];
            skip_ws();
            if (pos_ >= text_.size() || text_[pos_] != '=') fail("expected '='");
            ++pos_;
            skip_ws();
            if (pos_ >= text_.size() || text_[pos_] != '"') fail("expected '\"'");
            ++pos_;
            const std::size_t start = pos_;
            while (pos_ < text_.size() && text_[pos_] != '"') ++pos_;
            if (pos_ >= text_.size()) fail("unterminated attribute");
            el.attrs[key] = xml_unescape(text_.substr(start, pos_ - start));
            ++pos_;
        }
        // Content: text and child elements until matching close tag.
        while (true) {
            if (pos_ >= text_.size()) fail("unterminated element " + el.name);
            if (text_[pos_] == '<') {
                if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '/') {
                    pos_ += 2;
                    const std::size_t start = pos_;
                    while (pos_ < text_.size() && text_[pos_] != '>') ++pos_;
                    if (pos_ >= text_.size()) fail("unterminated close tag");
                    std::string_view close = text_.substr(start, pos_ - start);
                    ++pos_;
                    if (close != el.name)
                        fail("mismatched close tag " + std::string(close) + " for " +
                             el.name);
                    el.text = xml_unescape(el.text);
                    return el;
                }
                el.children.push_back(parse_element());
            } else {
                el.text += text_[pos_++];
            }
        }
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

MarshalledValue decode_value(const Element& el) {
    MarshalledValue v;
    v.tag = tag_from_name(el.attr("type"));
    switch (v.tag) {
        case ValueTag::Null: break;
        case ValueTag::Bool: v.b = el.text == "true"; break;
        case ValueTag::Int:
            v.i = static_cast<std::int32_t>(std::strtol(el.text.c_str(), nullptr, 10));
            break;
        case ValueTag::Long: v.j = std::strtoll(el.text.c_str(), nullptr, 10); break;
        case ValueTag::Double: v.d = std::strtod(el.text.c_str(), nullptr); break;
        case ValueTag::Str: v.s = el.text; break;
        case ValueTag::Ref:
            v.ref_node =
                static_cast<std::int32_t>(std::strtol(el.attr("node").c_str(), nullptr, 10));
            v.ref_oid = std::strtoull(el.attr("oid").c_str(), nullptr, 10);
            v.ref_class = el.attr("class");
            break;
    }
    return v;
}

const Element& only_child(const Element& el, const char* name) {
    if (el.children.size() != 1 || el.children[0].name != name)
        throw CodecError(std::string("soapx: expected single <") + name + "> in <" +
                         el.name + ">");
    return el.children[0];
}

std::string_view as_text(const Bytes& data) {
    if (data.empty()) return {};
    return std::string_view(reinterpret_cast<const char*>(data.data()), data.size());
}

}  // namespace

const std::string& SoapxCodec::protocol() const {
    static const std::string name = "SOAP";
    return name;
}

void SoapxCodec::encode_request_into(const CallRequest& req, ByteWriter& w) const {
    append_text(w, "<Envelope><Body><Request kind=\"");
    append_text(w, kind_name(req.kind));
    append_text(w, "\" id=\"");
    append_int(w, req.request_id);
    append_text(w, "\" trace=\"");
    append_int(w, req.trace_id);
    append_text(w, "\" span=\"");
    append_int(w, req.parent_span);
    append_text(w, "\" src=\"");
    append_int(w, req.src_node);
    append_text(w, "\" target=\"");
    append_int(w, req.target_oid);
    append_text(w, "\" class=\"");
    append_text(w, xml_escape(req.cls));
    append_text(w, "\" method=\"");
    append_text(w, xml_escape(req.method));
    append_text(w, "\" desc=\"");
    append_text(w, xml_escape(req.desc));
    append_text(w, "\"");
    // Reliability attributes only appear when set, so base-protocol
    // traffic keeps its original byte size (EXPERIMENTS.md E5).
    if (req.attempt != 0) {
        append_text(w, " attempt=\"");
        append_int(w, req.attempt);
        append_text(w, "\"");
    }
    if (req.deadline_us != 0) {
        append_text(w, " deadline=\"");
        append_int(w, req.deadline_us);
        append_text(w, "\"");
    }
    append_text(w, ">");
    for (const MarshalledValue& a : req.args) encode_value(w, "arg", a);
    append_text(w, "</Request></Body></Envelope>");
}

CallRequest SoapxCodec::decode_request(const Bytes& data) const {
    Element envelope = Scanner(as_text(data)).parse_document();
    if (envelope.name != "Envelope") throw CodecError("soapx: expected <Envelope>");
    const Element& request = only_child(only_child(envelope, "Body"), "Request");
    CallRequest req;
    req.kind = kind_from_name(request.attr("kind"));
    req.request_id = std::strtoull(request.attr("id").c_str(), nullptr, 10);
    req.trace_id = std::strtoull(request.attr("trace").c_str(), nullptr, 10);
    req.parent_span = std::strtoull(request.attr("span").c_str(), nullptr, 10);
    req.src_node =
        static_cast<std::int32_t>(std::strtol(request.attr("src").c_str(), nullptr, 10));
    req.target_oid = std::strtoull(request.attr("target").c_str(), nullptr, 10);
    req.cls = request.attr("class");
    req.method = request.attr("method");
    req.desc = request.attr("desc");
    static const std::string kZero = "0";
    req.attempt = static_cast<std::uint32_t>(
        std::strtoul(request.attr_or("attempt", kZero).c_str(), nullptr, 10));
    req.deadline_us =
        std::strtoull(request.attr_or("deadline", kZero).c_str(), nullptr, 10);
    for (const Element& child : request.children) {
        if (child.name != "arg") throw CodecError("soapx: unexpected <" + child.name + ">");
        req.args.push_back(decode_value(child));
    }
    return req;
}

void SoapxCodec::encode_reply_into(const CallReply& reply, ByteWriter& w) const {
    append_text(w, "<Envelope><Body><Reply id=\"");
    append_int(w, reply.request_id);
    append_text(w, "\">");
    if (reply.is_fault) {
        append_text(w, "<fault class=\"");
        append_text(w, xml_escape(reply.fault_class));
        append_text(w, "\">");
        append_text(w, xml_escape(reply.fault_msg));
        append_text(w, "</fault>");
    } else {
        encode_value(w, "result", reply.result);
    }
    append_text(w, "</Reply></Body></Envelope>");
}

CallReply SoapxCodec::decode_reply(const Bytes& data) const {
    Element envelope = Scanner(as_text(data)).parse_document();
    if (envelope.name != "Envelope") throw CodecError("soapx: expected <Envelope>");
    const Element& reply_el = only_child(only_child(envelope, "Body"), "Reply");
    CallReply reply;
    reply.request_id = std::strtoull(reply_el.attr("id").c_str(), nullptr, 10);
    if (reply_el.children.size() != 1)
        throw CodecError("soapx: reply must have exactly one child");
    const Element& payload = reply_el.children[0];
    if (payload.name == "fault") {
        reply.is_fault = true;
        reply.fault_class = payload.attr("class");
        reply.fault_msg = payload.text;
    } else if (payload.name == "result") {
        reply.result = decode_value(payload);
    } else {
        throw CodecError("soapx: unexpected reply payload <" + payload.name + ">");
    }
    return reply;
}

}  // namespace rafda::net
