// CORBX — the CORBA/GIOP stand-in protocol (paper Sec 2: "e.g. SOAP-based,
// RMI-based, CORBA-based, etc.").
//
// Binary like RMIB but CDR-flavoured: a GIOP-style 12-byte header (magic,
// version, message type, length) and 4-byte alignment padding before every
// multi-byte primitive, which makes it slightly larger and slightly more
// expensive than RMIB while staying far cheaper than SOAPX — a realistic
// middle point for the protocol-choice experiments.
#pragma once

#include "net/codec.hpp"

namespace rafda::net {

class CorbxCodec final : public Codec {
public:
    const std::string& protocol() const override;
    void encode_request_into(const CallRequest& req, ByteWriter& w) const override;
    CallRequest decode_request(const Bytes& data) const override;
    void encode_reply_into(const CallReply& reply, ByteWriter& w) const override;
    CallReply decode_reply(const Bytes& data) const override;
    double cpu_cost_ns_per_byte() const override { return 0.8; }
};

}  // namespace rafda::net
