#include "net/message.hpp"

namespace rafda::net {

MarshalledValue MarshalledValue::null() { return MarshalledValue{}; }

MarshalledValue MarshalledValue::of_bool(bool v) {
    MarshalledValue m;
    m.tag = ValueTag::Bool;
    m.b = v;
    return m;
}

MarshalledValue MarshalledValue::of_int(std::int32_t v) {
    MarshalledValue m;
    m.tag = ValueTag::Int;
    m.i = v;
    return m;
}

MarshalledValue MarshalledValue::of_long(std::int64_t v) {
    MarshalledValue m;
    m.tag = ValueTag::Long;
    m.j = v;
    return m;
}

MarshalledValue MarshalledValue::of_double(double v) {
    MarshalledValue m;
    m.tag = ValueTag::Double;
    m.d = v;
    return m;
}

MarshalledValue MarshalledValue::of_str(std::string v) {
    MarshalledValue m;
    m.tag = ValueTag::Str;
    m.s = std::move(v);
    return m;
}

MarshalledValue MarshalledValue::of_ref(std::int32_t node, std::uint64_t oid,
                                        std::string cls) {
    MarshalledValue m;
    m.tag = ValueTag::Ref;
    m.ref_node = node;
    m.ref_oid = oid;
    m.ref_class = std::move(cls);
    return m;
}

}  // namespace rafda::net
