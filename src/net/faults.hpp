// FaultPlan — scheduled, replayable failures in virtual time.
//
// A plan is a list of windows over the event-sequenced clock (DESIGN.md
// §13): a directed link can be down (partition) or flapping, its drop
// probability can be overridden, and a node can crash and later restart.
// Window membership is a pure function of virtual time, so a scenario
// replays bit-for-bit from the same seed — deterministic faults (down,
// flap, crash) consume no PRNG draws at all, and probabilistic overrides
// draw from the per-link streams SimNetwork already owns.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

namespace rafda::net {

using NodeId = std::int32_t;

enum class FaultKind {
    /// Directed link delivers nothing inside the window.
    LinkDown,
    /// Directed link alternates down/up in `period_us` slices, starting
    /// down at `from_us`.
    LinkFlap,
    /// Directed link's drop probability is `drop_probability` inside the
    /// window (overrides the LinkParams setting).
    DropRate,
    /// Node is crashed inside the window: calls to it (and from it) fail
    /// fast.  When the window ends the node restarts; what survives
    /// depends on the durability policy — by default the node loses its
    /// soft state (reply cache; heap and singletons are modelled as
    /// durable — see DESIGN.md §15), while `durable on` replays the
    /// node's WAL + snapshot so reply cache and heap both come back
    /// (DESIGN.md §20).
    NodeCrash,
};

/// One scheduled fault. Windows are half-open: active for
/// `from_us <= t < until_us`.
struct FaultWindow {
    FaultKind kind = FaultKind::LinkDown;
    std::uint64_t from_us = 0;
    std::uint64_t until_us = 0;
    /// Directed link for LinkDown/LinkFlap/DropRate.
    NodeId src = -1;
    NodeId dst = -1;
    /// Crashed node for NodeCrash.
    NodeId node = -1;
    /// Override probability for DropRate.
    double drop_probability = 0.0;
    /// Flap half-period: the link is down for `period_us`, up for
    /// `period_us`, down again, … (0 behaves like LinkDown).
    std::uint64_t period_us = 0;
};

class FaultPlan {
public:
    void add(FaultWindow window) { windows_.push_back(window); }
    void clear() { windows_.clear(); }
    bool empty() const noexcept { return windows_.empty(); }
    std::size_t size() const noexcept { return windows_.size(); }

    /// True when the directed link is unusable at `t` (inside a LinkDown
    /// window, or inside the down phase of a LinkFlap window).
    bool link_down(NodeId src, NodeId dst, std::uint64_t t) const;

    /// Drop-probability override active on the directed link at `t`, if
    /// any. When several DropRate windows overlap, the last-added wins.
    std::optional<double> drop_override(NodeId src, NodeId dst,
                                        std::uint64_t t) const;

    /// True when `node` is inside a NodeCrash window at `t`.
    bool node_down(NodeId node, std::uint64_t t) const;

    /// Number of NodeCrash windows for `node` that have *ended* at or
    /// before `t` — i.e. how many restarts the node has been through.
    /// Monotone in `t`, so a callee can detect "I restarted since my last
    /// request" by comparing against a remembered value.
    std::uint64_t restarts_before(NodeId node, std::uint64_t t) const;

    /// Restart observation callback: `fn(node, restarts, t_us)` fires from
    /// notify_restarts whenever the restart count observed for a node
    /// increases.  The runtime installs the node-recovery hook here so
    /// restart detection stays pull-based (no event is scheduled for the
    /// window edge itself) but flows through one seam.
    using RestartCallback =
        std::function<void(NodeId, std::uint64_t restarts, std::uint64_t t_us)>;
    void set_restart_callback(RestartCallback fn) { on_restart_ = std::move(fn); }

    /// Computes restarts_before(node, t) and fires the restart callback if
    /// the count rose since the last notification for `node`.  Const —
    /// observation must stay legal anywhere the plan is visible — with the
    /// last-notified memo mutable for exactly that reason.
    void notify_restarts(NodeId node, std::uint64_t t) const;

    /// Windows in insertion order, for tables and exports.
    void visit(const std::function<void(const FaultWindow&)>& fn) const;

private:
    std::vector<FaultWindow> windows_;
    RestartCallback on_restart_;
    mutable std::map<NodeId, std::uint64_t> notified_restarts_;
};

/// Human-readable name of a fault kind ("down", "flap", "drop", "crash").
const char* fault_kind_name(FaultKind kind);

}  // namespace rafda::net
