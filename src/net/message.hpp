// Wire-level message model shared by all protocol codecs.
//
// A marshalled value is either a primitive or a *remote reference*: the
// node the real object lives on, its object id there, and the original
// application class it stands for (so the receiving side can pick the
// right proxy class).  This is the representation boundary between the
// middleware and the protocols — codecs only see these structs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rafda::net {

enum class ValueTag : std::uint8_t { Null, Bool, Int, Long, Double, Str, Ref };

struct MarshalledValue {
    ValueTag tag = ValueTag::Null;
    bool b = false;
    std::int32_t i = 0;
    std::int64_t j = 0;
    double d = 0.0;
    std::string s;
    // Ref fields:
    std::int32_t ref_node = 0;
    std::uint64_t ref_oid = 0;
    std::string ref_class;  // original application class

    static MarshalledValue null();
    static MarshalledValue of_bool(bool v);
    static MarshalledValue of_int(std::int32_t v);
    static MarshalledValue of_long(std::int64_t v);
    static MarshalledValue of_double(double v);
    static MarshalledValue of_str(std::string v);
    static MarshalledValue of_ref(std::int32_t node, std::uint64_t oid, std::string cls);

    bool operator==(const MarshalledValue&) const = default;
};

enum class RequestKind : std::uint8_t {
    Invoke,    // call `method`/`desc` on object `target_oid`
    Create,    // instantiate the local implementation of `cls`, export it
    Discover,  // return (creating if needed) the `cls` singleton
};

struct CallRequest {
    RequestKind kind = RequestKind::Invoke;
    std::uint64_t request_id = 0;
    // Trace context (see src/obs/trace.hpp): the caller's trace id and the
    // span the request was issued under, so the remote dispatch nests under
    // the proxy invocation that caused it — across forwarding chains too.
    // Zero means "not traced"; codecs always carry both.
    std::uint64_t trace_id = 0;
    std::uint64_t parent_span = 0;
    // Event-sequencing metadata (simulation bookkeeping, NOT wire data):
    // the sender's virtual clock when the request was handed to the link
    // and the arrival time the network computed for it.  System::rpc
    // threads these through the request so server-side dispatch and codec
    // work are charged on the destination node's clock; codecs ignore
    // both, so wire sizes are unaffected.
    std::uint64_t sim_send_us = 0;
    std::uint64_t sim_arrival_us = 0;
    // Accounting metadata (simulation bookkeeping, NOT wire data): the
    // original application class the call targets (set by the proxy
    // dispatcher so the RPC layer can attribute traffic per class without
    // re-deriving it from descriptors) and the wire bytes this logical
    // call has consumed so far across attempts — requests and replies,
    // retries included.  Codecs ignore both.
    std::string stat_class;
    std::uint64_t sim_wire_bytes = 0;
    // Reliability extension (DESIGN.md §15), carried on the wire only when
    // nonzero so fault-free encodings stay byte-identical to the base
    // protocol: `attempt` is 0 for the first try and N for the Nth retry
    // (the callee's dedup cache and trace spans use it); `deadline_us` is
    // the absolute virtual time after which the callee must not execute
    // the call (0 = no deadline).
    std::uint32_t attempt = 0;
    std::uint64_t deadline_us = 0;
    std::int32_t src_node = 0;
    std::uint64_t target_oid = 0;  // Invoke only
    std::string cls;               // Create/Discover: original class name
    std::string method;            // Invoke only
    std::string desc;              // Invoke only (transformed descriptor)
    std::vector<MarshalledValue> args;

    bool operator==(const CallRequest&) const = default;
};

struct CallReply {
    std::uint64_t request_id = 0;
    bool is_fault = false;
    MarshalledValue result;    // valid when !is_fault
    std::string fault_class;   // guest throwable class name
    std::string fault_msg;

    bool operator==(const CallReply&) const = default;
};

}  // namespace rafda::net
