#include "net/rmib.hpp"

#include "support/error.hpp"

namespace rafda::net {

namespace {

constexpr std::uint8_t kMagicRequest = 0xA1;
constexpr std::uint8_t kMagicReply = 0xA2;
// Request carrying the reliability extension (attempt + deadline): used
// only when either field is nonzero, so base-protocol traffic — and the
// fault-free wire sizes in EXPERIMENTS.md E5 — is byte-identical to the
// original framing.
constexpr std::uint8_t kMagicRequestReliable = 0xA3;
// Batch-continuation entry: a request coalesced into an already-open
// frame on a busy link.  It omits src_node (pinned by the frame) and
// carries request_id as a varint delta from the frame-opening call, with
// the reliability and trace fields flag-gated the same way 0xA3 gates
// the reliability extension.  Only decodable against the BatchContext
// the encoder used, so decode_request rejects it outright.
constexpr std::uint8_t kMagicBatchEntry = 0xA4;

constexpr std::uint8_t kEntryFlagReliable = 0x01;
constexpr std::uint8_t kEntryFlagTraced = 0x02;

void write_value(ByteWriter& w, const MarshalledValue& v) {
    w.u8(static_cast<std::uint8_t>(v.tag));
    switch (v.tag) {
        case ValueTag::Null: break;
        case ValueTag::Bool: w.u8(v.b ? 1 : 0); break;
        case ValueTag::Int: w.i32(v.i); break;
        case ValueTag::Long: w.i64(v.j); break;
        case ValueTag::Double: w.f64(v.d); break;
        case ValueTag::Str: w.str(v.s); break;
        case ValueTag::Ref:
            w.i32(v.ref_node);
            w.u64(v.ref_oid);
            w.str(v.ref_class);
            break;
    }
}

MarshalledValue read_value(ByteReader& r) {
    MarshalledValue v;
    std::uint8_t tag = r.u8();
    if (tag > static_cast<std::uint8_t>(ValueTag::Ref))
        throw CodecError("rmib: bad value tag");
    v.tag = static_cast<ValueTag>(tag);
    switch (v.tag) {
        case ValueTag::Null: break;
        case ValueTag::Bool: v.b = r.u8() != 0; break;
        case ValueTag::Int: v.i = r.i32(); break;
        case ValueTag::Long: v.j = r.i64(); break;
        case ValueTag::Double: v.d = r.f64(); break;
        case ValueTag::Str: v.s = r.str(); break;
        case ValueTag::Ref:
            v.ref_node = r.i32();
            v.ref_oid = r.u64();
            v.ref_class = r.str();
            break;
    }
    return v;
}

std::uint8_t checked_kind(std::uint8_t kind) {
    if (kind > static_cast<std::uint8_t>(RequestKind::Discover))
        throw CodecError("rmib: bad request kind");
    return kind;
}

void write_call_body(ByteWriter& w, const CallRequest& req) {
    w.u64(req.target_oid);
    w.str(req.cls);
    w.str(req.method);
    w.str(req.desc);
    w.u32(static_cast<std::uint32_t>(req.args.size()));
    for (const MarshalledValue& a : req.args) write_value(w, a);
}

void read_call_body(ByteReader& r, CallRequest& req) {
    req.target_oid = r.u64();
    req.cls = r.str();
    req.method = r.str();
    req.desc = r.str();
    std::uint32_t n = r.u32();
    req.args.reserve(n);
    for (std::uint32_t k = 0; k < n; ++k) req.args.push_back(read_value(r));
}

}  // namespace

const std::string& RmibCodec::protocol() const {
    static const std::string name = "RMI";
    return name;
}

void RmibCodec::encode_request_into(const CallRequest& req, ByteWriter& w) const {
    const bool reliable = req.attempt != 0 || req.deadline_us != 0;
    w.u8(reliable ? kMagicRequestReliable : kMagicRequest);
    if (reliable) {
        w.u32(req.attempt);
        w.u64(req.deadline_us);
    }
    w.u8(static_cast<std::uint8_t>(req.kind));
    w.u64(req.request_id);
    w.u64(req.trace_id);
    w.u64(req.parent_span);
    w.i32(req.src_node);
    write_call_body(w, req);
}

CallRequest RmibCodec::decode_request(const Bytes& data) const {
    ByteReader r(data);
    const std::uint8_t magic = r.u8();
    if (magic == kMagicBatchEntry)
        throw CodecError("rmib: batch entry outside a batch frame");
    if (magic != kMagicRequest && magic != kMagicRequestReliable)
        throw CodecError("rmib: bad request magic");
    CallRequest req;
    if (magic == kMagicRequestReliable) {
        req.attempt = r.u32();
        req.deadline_us = r.u64();
    }
    req.kind = static_cast<RequestKind>(checked_kind(r.u8()));
    req.request_id = r.u64();
    req.trace_id = r.u64();
    req.parent_span = r.u64();
    req.src_node = r.i32();
    read_call_body(r, req);
    if (!r.at_end()) throw CodecError("rmib: trailing bytes in request");
    return req;
}

void RmibCodec::encode_batch_entry(const CallRequest& req, const BatchContext& ctx,
                                   ByteWriter& w) const {
    if (req.src_node != ctx.src_node)
        throw CodecError("rmib: batch entry from a different source node");
    if (req.request_id < ctx.base_request_id)
        throw CodecError("rmib: batch entry precedes the frame-opening call");
    std::uint8_t flags = 0;
    if (req.attempt != 0 || req.deadline_us != 0) flags |= kEntryFlagReliable;
    if (req.trace_id != 0 || req.parent_span != 0) flags |= kEntryFlagTraced;
    w.u8(kMagicBatchEntry);
    w.u8(flags);
    w.varu64(req.request_id - ctx.base_request_id);
    w.u8(static_cast<std::uint8_t>(req.kind));
    if (flags & kEntryFlagReliable) {
        w.u32(req.attempt);
        w.u64(req.deadline_us);
    }
    if (flags & kEntryFlagTraced) {
        w.u64(req.trace_id);
        w.u64(req.parent_span);
    }
    write_call_body(w, req);
}

CallRequest RmibCodec::decode_batch_entry(const Bytes& data,
                                          const BatchContext& ctx) const {
    ByteReader r(data);
    if (r.u8() != kMagicBatchEntry) throw CodecError("rmib: bad batch-entry magic");
    const std::uint8_t flags = r.u8();
    if (flags & ~(kEntryFlagReliable | kEntryFlagTraced))
        throw CodecError("rmib: bad batch-entry flags");
    CallRequest req;
    req.src_node = ctx.src_node;
    req.request_id = ctx.base_request_id + r.varu64();
    req.kind = static_cast<RequestKind>(checked_kind(r.u8()));
    if (flags & kEntryFlagReliable) {
        req.attempt = r.u32();
        req.deadline_us = r.u64();
    }
    if (flags & kEntryFlagTraced) {
        req.trace_id = r.u64();
        req.parent_span = r.u64();
    }
    read_call_body(r, req);
    if (!r.at_end()) throw CodecError("rmib: trailing bytes in batch entry");
    return req;
}

void RmibCodec::encode_reply_into(const CallReply& reply, ByteWriter& w) const {
    w.u8(kMagicReply);
    w.u64(reply.request_id);
    w.u8(reply.is_fault ? 1 : 0);
    if (reply.is_fault) {
        w.str(reply.fault_class);
        w.str(reply.fault_msg);
    } else {
        write_value(w, reply.result);
    }
}

CallReply RmibCodec::decode_reply(const Bytes& data) const {
    ByteReader r(data);
    if (r.u8() != kMagicReply) throw CodecError("rmib: bad reply magic");
    CallReply reply;
    reply.request_id = r.u64();
    reply.is_fault = r.u8() != 0;
    if (reply.is_fault) {
        reply.fault_class = r.str();
        reply.fault_msg = r.str();
    } else {
        reply.result = read_value(r);
    }
    if (!r.at_end()) throw CodecError("rmib: trailing bytes in reply");
    return reply;
}

}  // namespace rafda::net
