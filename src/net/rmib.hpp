// RMIB — the compact binary protocol (RMI stand-in).
//
// RMIB is the only shipped codec with batch-entry framing: calls
// coalesced into an open frame on a busy link travel as 0xA4
// continuation entries that omit the fields pinned down by the frame's
// BatchContext (DESIGN.md §17).
#pragma once

#include "net/codec.hpp"

namespace rafda::net {

class RmibCodec final : public Codec {
public:
    const std::string& protocol() const override;
    void encode_request_into(const CallRequest& req, ByteWriter& w) const override;
    CallRequest decode_request(const Bytes& data) const override;
    void encode_reply_into(const CallReply& reply, ByteWriter& w) const override;
    CallReply decode_reply(const Bytes& data) const override;
    bool supports_batch_entries() const override { return true; }
    void encode_batch_entry(const CallRequest& req, const BatchContext& ctx,
                            ByteWriter& w) const override;
    CallRequest decode_batch_entry(const Bytes& data,
                                   const BatchContext& ctx) const override;
    double cpu_cost_ns_per_byte() const override { return 0.5; }
};

}  // namespace rafda::net
