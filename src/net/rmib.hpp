// RMIB — the compact binary protocol (RMI stand-in).
#pragma once

#include "net/codec.hpp"

namespace rafda::net {

class RmibCodec final : public Codec {
public:
    const std::string& protocol() const override;
    Bytes encode_request(const CallRequest& req) const override;
    CallRequest decode_request(const Bytes& data) const override;
    Bytes encode_reply(const CallReply& reply) const override;
    CallReply decode_reply(const Bytes& data) const override;
    double cpu_cost_ns_per_byte() const override { return 0.5; }
};

}  // namespace rafda::net
