#include "net/faults.hpp"

namespace rafda::net {

namespace {

bool in_window(const FaultWindow& w, std::uint64_t t) {
    return t >= w.from_us && t < w.until_us;
}

}  // namespace

bool FaultPlan::link_down(NodeId src, NodeId dst, std::uint64_t t) const {
    for (const FaultWindow& w : windows_) {
        if (w.src != src || w.dst != dst || !in_window(w, t)) continue;
        if (w.kind == FaultKind::LinkDown) return true;
        if (w.kind == FaultKind::LinkFlap) {
            if (w.period_us == 0) return true;
            // Alternating half-periods starting down: slices 0, 2, 4, …
            // are down. Pure arithmetic on virtual time — no PRNG draw —
            // so the flap schedule is identical on every replay.
            if (((t - w.from_us) / w.period_us) % 2 == 0) return true;
        }
    }
    return false;
}

std::optional<double> FaultPlan::drop_override(NodeId src, NodeId dst,
                                               std::uint64_t t) const {
    std::optional<double> result;
    for (const FaultWindow& w : windows_) {
        if (w.kind == FaultKind::DropRate && w.src == src && w.dst == dst &&
            in_window(w, t)) {
            result = w.drop_probability;
        }
    }
    return result;
}

bool FaultPlan::node_down(NodeId node, std::uint64_t t) const {
    for (const FaultWindow& w : windows_) {
        if (w.kind == FaultKind::NodeCrash && w.node == node && in_window(w, t)) {
            return true;
        }
    }
    return false;
}

std::uint64_t FaultPlan::restarts_before(NodeId node, std::uint64_t t) const {
    std::uint64_t restarts = 0;
    for (const FaultWindow& w : windows_) {
        if (w.kind == FaultKind::NodeCrash && w.node == node && w.until_us <= t) {
            ++restarts;
        }
    }
    return restarts;
}

void FaultPlan::notify_restarts(NodeId node, std::uint64_t t) const {
    if (!on_restart_) return;
    const std::uint64_t restarts = restarts_before(node, t);
    std::uint64_t& seen = notified_restarts_[node];
    if (restarts <= seen) return;
    seen = restarts;
    on_restart_(node, restarts, t);
}

void FaultPlan::visit(const std::function<void(const FaultWindow&)>& fn) const {
    for (const FaultWindow& w : windows_) fn(w);
}

const char* fault_kind_name(FaultKind kind) {
    switch (kind) {
        case FaultKind::LinkDown: return "down";
        case FaultKind::LinkFlap: return "flap";
        case FaultKind::DropRate: return "drop";
        case FaultKind::NodeCrash: return "crash";
    }
    return "?";
}

}  // namespace rafda::net
