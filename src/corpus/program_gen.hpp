// Random executable guest programs (property-based differential testing
// and benchmark workloads).
//
// Programs are generated stratified — class Ci only references classes
// Cj with j < i — so there is no recursion and every run terminates.  Each
// program has a Main.main()V that builds an object graph, drives it with a
// bounded loop, and prints running digests through Sys.println; two
// executions are equivalent iff their outputs match byte for byte.  The
// generator only emits constructs the transformation supports, and
// optionally statics, strings and cross-object mutation to stress the
// different rewrite rules.
#pragma once

#include <cstdint>
#include <string>

#include "model/classpool.hpp"

namespace rafda::corpus {

struct ProgramParams {
    std::size_t classes = 6;
    /// Loop iterations executed by Main.
    int iterations = 12;
    /// Generate static fields/methods on some classes.
    bool use_statics = true;
    /// Generate string fields and concatenation.
    bool use_strings = true;
    /// Generate a per-object long[] ring buffer exercised by step().
    bool use_arrays = false;
    std::uint64_t seed = 1;
};

/// Generates a self-contained program (requires the prelude for Sys).
/// The entry point is `Main.main ()V`.
model::ClassPool generate_program(const ProgramParams& params);

/// Name of the entry class.
inline constexpr const char* kProgramMain = "Main";

}  // namespace rafda::corpus
