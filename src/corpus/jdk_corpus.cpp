#include "corpus/jdk_corpus.hpp"

#include <vector>

#include "model/builder.hpp"
#include "support/rng.hpp"

namespace rafda::corpus {

using model::ClassBuilder;
using model::ClassFile;
using model::MethodSig;
using model::TypeDesc;

model::ClassPool generate_jdk_corpus(const JdkCorpusParams& params) {
    Rng rng(params.seed);
    model::ClassPool pool;

    const std::size_t n = params.total_types;
    const std::size_t packages = std::max<std::size_t>(1, params.packages);
    const std::size_t lowlevel_cutoff = static_cast<std::size_t>(
        static_cast<double>(packages) * params.lowlevel_package_fraction);

    struct TypeInfo {
        std::string name;
        std::size_t package;
        bool is_interface;
        bool is_throwable;
    };
    std::vector<TypeInfo> types;
    types.reserve(n);

    // Pass 1: decide identities so references can point anywhere "earlier"
    // (keeps the hierarchy acyclic by construction).
    for (std::size_t i = 0; i < n; ++i) {
        TypeInfo info;
        info.package = rng.below(packages);
        info.is_interface = rng.chance(params.interface_fraction);
        info.is_throwable = !info.is_interface && rng.chance(params.throwable_fraction);
        info.name = "pkg" + std::to_string(info.package) + "_T" + std::to_string(i);
        types.push_back(std::move(info));
    }

    // Pass 2: build the classes.
    for (std::size_t i = 0; i < n; ++i) {
        const TypeInfo& info = types[i];
        ClassBuilder b(info.name);
        if (info.is_interface) b.interface_();

        const bool lowlevel = info.package < lowlevel_cutoff;

        // Inheritance: pick an earlier type of a compatible kind, biased to
        // the same package.  Throwables extend throwables (or are roots,
        // which makes them special themselves).
        auto pick_earlier = [&](auto&& predicate) -> const TypeInfo* {
            if (i == 0) return nullptr;
            for (int attempt = 0; attempt < 12; ++attempt) {
                std::size_t j = rng.below(i);
                if (rng.chance(params.intra_package_bias) &&
                    types[j].package != info.package)
                    continue;
                if (predicate(types[j])) return &types[j];
            }
            return nullptr;
        };

        if (info.is_throwable) {
            const TypeInfo* super = pick_earlier(
                [](const TypeInfo& t) { return t.is_throwable; });
            if (super) b.extends(super->name);
            else b.special();  // a Throwable-like root
        } else if (!info.is_interface && rng.chance(params.subclass_probability)) {
            const TypeInfo* super = pick_earlier([](const TypeInfo& t) {
                return !t.is_interface && !t.is_throwable;
            });
            if (super) b.extends(super->name);
        }
        if (!info.is_interface && rng.chance(0.3)) {
            const TypeInfo* iface =
                pick_earlier([](const TypeInfo& t) { return t.is_interface; });
            if (iface) b.implements(iface->name);
        }

        // Native methods (rule-1 seeds).
        double p_native = lowlevel ? params.native_in_lowlevel : params.native_elsewhere;
        if (!info.is_interface && rng.chance(p_native)) {
            b.native_method("native" + std::to_string(i),
                            MethodSig({TypeDesc::int_()}, TypeDesc::int_()));
        }

        // Reference edges: fields typed with earlier classes.
        std::size_t refs = static_cast<std::size_t>(rng.below(
            static_cast<std::uint64_t>(2.0 * params.mean_references) + 1));
        for (std::size_t r = 0; r < refs && !info.is_interface; ++r) {
            const TypeInfo* target =
                pick_earlier([](const TypeInfo& t) { return !t.is_interface; });
            if (target)
                b.field("ref" + std::to_string(r), TypeDesc::ref(target->name));
        }

        // A plain method so the class is not vacuous; interfaces get an
        // abstract member.
        if (info.is_interface) {
            b.abstract_method("op", MethodSig({}, TypeDesc::int_()));
        } else {
            model::CodeBuilder body;
            body.const_int(static_cast<std::int32_t>(i)).ret_value();
            b.method("op", MethodSig({}, TypeDesc::int_()), std::move(body));
        }

        pool.add(b.build());
    }
    return pool;
}

}  // namespace rafda::corpus
