// Synthetic JDK-like corpus (experiment E3).
//
// The paper measures its transformability rules against JDK 1.4.1: "About
// 40% of the 8,200 classes and interfaces in JDK 1.4.1 cannot be
// transformed."  We have no JDK, so this generator produces a class
// library with the JDK's relevant gross statistics:
//
//   * ~8,200 classes and interfaces grouped into packages;
//   * a minority of classes declare native methods (the java.lang/io/net/
//     awt pattern — natives cluster in "low-level" packages);
//   * an exception hierarchy rooted in special (Throwable-like) classes;
//   * dense intra-package and sparser cross-package reference edges;
//   * single inheritance trees plus interface implementation.
//
// The Section 2.4 closure then determines the non-transformable fraction;
// with the calibrated defaults it lands near the paper's 40%, and the
// bench sweeps the seed fractions to show how the figure responds.
#pragma once

#include <cstdint>
#include <string>

#include "model/classpool.hpp"

namespace rafda::corpus {

struct JdkCorpusParams {
    std::size_t total_types = 8200;
    std::size_t packages = 120;
    double interface_fraction = 0.18;
    /// Fraction of packages that are "low-level" (native-heavy).
    double lowlevel_package_fraction = 0.12;
    /// Probability a class in a low-level package declares a native method.
    double native_in_lowlevel = 0.35;
    /// Probability elsewhere.
    double native_elsewhere = 0.008;
    /// Fraction of classes that are throwables (JDK has a large exception
    /// zoo); they and their subclasses are special.
    double throwable_fraction = 0.04;
    /// Probability a class extends an earlier class (vs being a root).
    double subclass_probability = 0.55;
    /// Mean number of reference edges (fields/signatures) per class.
    double mean_references = 2.0;
    /// Probability a reference stays inside the package.
    double intra_package_bias = 0.7;
    std::uint64_t seed = 41;
};

/// Generates the corpus.  The pool is structurally meaningful (it passes
/// the transformability analysis) but method bodies are trivial.
model::ClassPool generate_jdk_corpus(const JdkCorpusParams& params);

}  // namespace rafda::corpus
