#include "corpus/program_gen.hpp"

#include <vector>

#include "model/builder.hpp"
#include "support/rng.hpp"
#include "vm/prelude.hpp"

namespace rafda::corpus {

using model::ClassBuilder;
using model::CodeBuilder;
using model::MethodSig;
using model::Op;
using model::TypeDesc;

namespace {

std::string cls_name(std::size_t i) { return "Gen" + std::to_string(i); }

}  // namespace

model::ClassPool generate_program(const ProgramParams& params) {
    Rng rng(params.seed);
    model::ClassPool pool;
    vm::install_prelude(pool);

    const std::size_t n = std::max<std::size_t>(1, params.classes);

    // Remember each class's dependency (if any) so Main can build the graph
    // and so step() can chain calls.
    std::vector<int> dep_of(n, -1);
    std::vector<bool> has_static(n, false);

    for (std::size_t i = 0; i < n; ++i) {
        const std::string self = cls_name(i);
        ClassBuilder b(self);
        b.field("acc", TypeDesc::long_());
        const TypeDesc ring_t = TypeDesc::array(TypeDesc::long_());
        if (params.use_arrays) b.field("ring", ring_t);
        if (params.use_strings) b.field("tag", TypeDesc::str());
        if (i > 0 && rng.chance(0.8)) dep_of[i] = static_cast<int>(rng.below(i));
        if (dep_of[i] >= 0)
            b.field("dep", TypeDesc::ref(cls_name(static_cast<std::size_t>(dep_of[i]))));
        has_static[i] = params.use_statics && rng.chance(0.5);
        if (has_static[i]) b.static_field("hits", TypeDesc::int_());

        // ctor (J)V: seeds acc (and tag), creates the dependency.
        {
            CodeBuilder ctor;
            ctor.load(0).load(1).put_field(self, "acc", TypeDesc::long_());
            if (params.use_arrays) {
                ctor.load(0)
                    .const_int(4)
                    .op(model::ins::new_array(TypeDesc::long_()))
                    .put_field(self, "ring", ring_t);
            }
            if (params.use_strings) {
                ctor.load(0)
                    .const_str(self + ":")
                    .load(1)
                    .concat()
                    .put_field(self, "tag", TypeDesc::str());
            }
            if (dep_of[i] >= 0) {
                const std::string dep = cls_name(static_cast<std::size_t>(dep_of[i]));
                ctor.load(0)
                    .new_(dep)
                    .dup()
                    .load(1)
                    .const_long(static_cast<std::int64_t>(rng.below(97) + 1))
                    .add()
                    .invoke_special(dep, "<init>", MethodSig({TypeDesc::long_()},
                                                             TypeDesc::void_()))
                    .put_field(self, "dep", TypeDesc::ref(dep));
            }
            ctor.ret();
            model::Method m;
            m.name = "<init>";
            m.sig = MethodSig({TypeDesc::long_()}, TypeDesc::void_());
            m.code = ctor.finish(2);
            b.method(std::move(m));
        }

        // step (J)J: mutate acc deterministically, chain into dep, maybe
        // bump the static counter.
        {
            CodeBuilder step;
            const std::int64_t mul = static_cast<std::int64_t>(rng.below(7) + 2);
            const std::int64_t add = static_cast<std::int64_t>(rng.below(1000));
            // acc = acc * mul + add + arg
            step.load(0)
                .load(0)
                .get_field(self, "acc", TypeDesc::long_())
                .const_long(mul)
                .mul()
                .const_long(add)
                .add()
                .load(1)
                .add();
            if (dep_of[i] >= 0) {
                const std::string dep = cls_name(static_cast<std::size_t>(dep_of[i]));
                step.load(0)
                    .get_field(self, "dep", TypeDesc::ref(dep))
                    .load(1)
                    .const_long(3)
                    .rem()
                    .invoke_virtual(dep, "step",
                                    MethodSig({TypeDesc::long_()}, TypeDesc::long_()))
                    .add();
            }
            step.put_field(self, "acc", TypeDesc::long_());
            if (params.use_arrays) {
                // ring[arg % 4] = acc; acc += ring[(arg+1) % 4]
                step.load(0)
                    .get_field(self, "ring", ring_t)
                    .load(1)
                    .const_long(4)
                    .rem()
                    .conv(model::Kind::Int)
                    .load(0)
                    .get_field(self, "acc", TypeDesc::long_())
                    .astore();
                step.load(0)
                    .load(0)
                    .get_field(self, "acc", TypeDesc::long_())
                    .load(0)
                    .get_field(self, "ring", ring_t)
                    .load(1)
                    .const_long(1)
                    .add()
                    .const_long(4)
                    .rem()
                    .conv(model::Kind::Int)
                    .aload()
                    .add()
                    .put_field(self, "acc", TypeDesc::long_());
            }
            if (has_static[i]) {
                step.get_static(self, "hits", TypeDesc::int_())
                    .const_int(1)
                    .add()
                    .put_static(self, "hits", TypeDesc::int_());
            }
            step.load(0).get_field(self, "acc", TypeDesc::long_()).ret_value();
            b.method("step", MethodSig({TypeDesc::long_()}, TypeDesc::long_()),
                     std::move(step));
        }

        // digest ()S: stringify state (exercises strings + reads).
        {
            CodeBuilder digest;
            if (params.use_strings) {
                digest.load(0).get_field(self, "tag", TypeDesc::str());
            } else {
                digest.const_str(self);
            }
            digest.const_str("/").concat();
            digest.load(0).get_field(self, "acc", TypeDesc::long_()).concat();
            if (has_static[i]) {
                digest.const_str("#").concat();
                digest.get_static(self, "hits", TypeDesc::int_()).concat();
            }
            digest.ret_value();
            b.method("digest", MethodSig({}, TypeDesc::str()), std::move(digest));
        }

        pool.add(b.build());
    }

    // Main: build the deepest class, loop step(), print digests.
    {
        const std::string root = cls_name(n - 1);
        ClassBuilder b(kProgramMain);
        CodeBuilder main;
        // locals: 0 = root object, 1 = i (int), 2 = total (long)
        main.new_(root)
            .dup()
            .const_long(static_cast<std::int64_t>(params.seed % 1000))
            .invoke_special(root, "<init>", MethodSig({TypeDesc::long_()},
                                                      TypeDesc::void_()))
            .store(0);
        main.const_int(0).store(1);
        main.const_long(0).store(2);
        model::Label top = main.new_label();
        model::Label done = main.new_label();
        main.bind(top);
        main.load(1).const_int(params.iterations).cmp(Op::CmpGe).if_true(done);
        // total += root.step(i)
        main.load(2)
            .load(0)
            .load(1)
            .conv(model::Kind::Long)
            .invoke_virtual(root, "step", MethodSig({TypeDesc::long_()}, TypeDesc::long_()))
            .add()
            .store(2);
        main.load(1).const_int(1).add().store(1);
        main.go(top);
        main.bind(done);
        main.const_str("total=")
            .load(2)
            .concat()
            .invoke_static("Sys", "println", MethodSig({TypeDesc::str()}, TypeDesc::void_()));
        main.load(0)
            .invoke_virtual(root, "digest", MethodSig({}, TypeDesc::str()))
            .invoke_static("Sys", "println", MethodSig({TypeDesc::str()}, TypeDesc::void_()));
        main.ret();
        b.static_method("main", MethodSig({}, TypeDesc::void_()), std::move(main));
        pool.add(b.build());
    }

    return pool;
}

}  // namespace rafda::corpus
