// Naming scheme of the generated artefacts, exactly as in the paper
// (Section 2): for a class A the pipeline emits A_O_Int, A_O_Local,
// A_O_Proxy_<PROTO>, A_C_Int, A_C_Local, A_C_Proxy_<PROTO>, A_O_Factory
// and A_C_Factory; every field f gains get_f/set_f property accessors.
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace rafda::transform {

namespace naming {

std::string o_int(std::string_view cls);
std::string o_local(std::string_view cls);
std::string o_proxy(std::string_view cls, std::string_view protocol);
std::string c_int(std::string_view cls);
std::string c_local(std::string_view cls);
std::string c_proxy(std::string_view cls, std::string_view protocol);
std::string o_factory(std::string_view cls);
std::string c_factory(std::string_view cls);

std::string getter(std::string_view field);
std::string setter(std::string_view field);

/// Factory forwarder for a static method m: `call_m` (an implementation
/// convenience documented in DESIGN.md; it routes through discover()).
std::string static_forwarder(std::string_view method);

/// Name of the singleton accessor on A_C_Local (paper Fig 4: get_me).
inline constexpr const char* kSingletonField = "me";
inline constexpr const char* kSingletonGetter = "get_me";

/// Fields every generated proxy carries so the middleware can route calls:
/// the node the real object lives on and its object id there.
inline constexpr const char* kProxyNodeField = "__node";
inline constexpr const char* kProxyOidField = "__oid";

/// True if `name` looks like a pipeline-generated class name.
bool is_generated(std::string_view name);

/// Decomposition of a generated proxy class name.
struct ProxyName {
    std::string original;  // the application class, e.g. "X"
    char family;           // 'O' (instance) or 'C' (static)
    std::string protocol;  // e.g. "RMI"
};

/// Parses "X_O_Proxy_RMI" / "X_C_Proxy_SOAP"; nullopt for other names.
std::optional<ProxyName> parse_proxy(std::string_view name);

/// "X_O_Local" -> "X_O_Int", "X_C_Local" -> "X_C_Int"; nullopt otherwise.
std::optional<std::string> local_to_interface(std::string_view name);

/// "X_O_Int" + "RMI" -> "X_O_Proxy_RMI" (also for the _C_ family).
std::string interface_to_proxy(std::string_view iface, std::string_view protocol);

/// "X_O_Int" -> "X" (also for the _C_ family); nullopt for other names.
std::optional<std::string> interface_to_original(std::string_view iface);

}  // namespace naming

}  // namespace rafda::transform
