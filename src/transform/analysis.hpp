// Transformability analysis — Section 2.4 of the paper.
//
// A class or interface cannot be transformed when:
//   (1) it declares a native method (native code cannot be rewritten);
//   (2) it has special JVM semantics (is_special, e.g. Throwable), or
//       inherits from / implements a special type;
//   (3) it is the superclass of a non-transformable class (the
//       non-transformable subclass would need multiple inheritance to
//       inherit both the _O_Local and _C_Local parts);
//   (4) it is referenced by a non-transformable class (references inside
//       a non-transformable class cannot be redirected to the extracted
//       interface, so the referenced type must keep its original form).
//
// Rules (3) and (4) propagate.  The analysis builds an interned class-id
// dependency graph once (adjacency over dense u32 ids, reference lists
// memoized against the pool generation), decides rules 1/2 per class with
// a memoized, cycle-guarded hierarchy walk, then runs the 3/4 propagation
// as an O(V+E) monotone worklist: each class enters the worklist at most
// once and each edge is scanned at most once.  Verdicts, reasons and
// blame are identical to the original string-keyed fixpoint (the worklist
// preserves its seeding and marking order).  Applied to JDK 1.4.1 the
// paper measures ~40% of 8,200 classes and interfaces non-transformable;
// bench_transformability reproduces that shape on a synthetic corpus.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "model/classpool.hpp"

namespace rafda::support {
class ThreadPool;
}

namespace rafda::transform {

enum class Verdict : std::uint8_t { Transformable, NonTransformable };

/// Why a class ended up non-transformable.  For transformable classes the
/// reason is None.
enum class Reason : std::uint8_t {
    None,
    NativeMethod,              // rule 1
    SpecialClass,              // rule 2 (direct or inherited)
    SuperOfNonTransformable,   // rule 3
    ReferencedByNonTransformable,  // rule 4
};

std::string_view reason_name(Reason r);

struct ClassStatus {
    Verdict verdict = Verdict::Transformable;
    Reason reason = Reason::None;
    /// The class that caused a rule-3/4 propagation (diagnostic).
    std::string blamed_on;
};

/// Result of the analysis over one pool.
class Analysis {
public:
    const ClassStatus& status_of(const std::string& cls) const;
    bool transformable(const std::string& cls) const;

    /// All transformable / non-transformable class names, sorted.
    std::vector<std::string> transformable_classes() const;
    std::vector<std::string> non_transformable_classes() const;

    std::size_t total() const { return status_.size(); }
    /// Aggregate counters are computed once when the analysis is built,
    /// not by re-scanning the status map per query.
    std::size_t non_transformable_count() const { return non_transformable_count_; }
    double non_transformable_fraction() const;

    /// Count of non-transformable classes per reason.
    const std::map<Reason, std::size_t>& reason_histogram() const {
        return reason_hist_;
    }

    friend Analysis analyze(const model::ClassPool& pool, support::ThreadPool* threads);

private:
    std::map<std::string, ClassStatus> status_;
    std::size_t non_transformable_count_ = 0;
    std::map<Reason, std::size_t> reason_hist_;
};

/// Runs the Section 2.4 analysis on `pool`.  With a thread pool, the
/// per-class graph construction (rule-1 scan, reference-edge build) fans
/// out across it; the propagation itself is O(V+E) and stays serial.  The
/// result is identical at any thread count.
Analysis analyze(const model::ClassPool& pool, support::ThreadPool* threads = nullptr);

}  // namespace rafda::transform
