// Transformability analysis — Section 2.4 of the paper.
//
// A class or interface cannot be transformed when:
//   (1) it declares a native method (native code cannot be rewritten);
//   (2) it has special JVM semantics (is_special, e.g. Throwable), or
//       inherits from / implements a special type;
//   (3) it is the superclass of a non-transformable class (the
//       non-transformable subclass would need multiple inheritance to
//       inherit both the _O_Local and _C_Local parts);
//   (4) it is referenced by a non-transformable class (references inside
//       a non-transformable class cannot be redirected to the extracted
//       interface, so the referenced type must keep its original form).
//
// Rules (3) and (4) propagate, so the analysis iterates to a fixpoint.
// Applied to JDK 1.4.1 the paper measures ~40% of 8,200 classes and
// interfaces non-transformable; bench_transformability reproduces that
// shape on a synthetic corpus.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "model/classpool.hpp"

namespace rafda::transform {

enum class Verdict : std::uint8_t { Transformable, NonTransformable };

/// Why a class ended up non-transformable.  For transformable classes the
/// reason is None.
enum class Reason : std::uint8_t {
    None,
    NativeMethod,              // rule 1
    SpecialClass,              // rule 2 (direct or inherited)
    SuperOfNonTransformable,   // rule 3
    ReferencedByNonTransformable,  // rule 4
};

std::string_view reason_name(Reason r);

struct ClassStatus {
    Verdict verdict = Verdict::Transformable;
    Reason reason = Reason::None;
    /// The class that caused a rule-3/4 propagation (diagnostic).
    std::string blamed_on;
};

/// Result of the analysis over one pool.
class Analysis {
public:
    const ClassStatus& status_of(const std::string& cls) const;
    bool transformable(const std::string& cls) const;

    /// All transformable / non-transformable class names, sorted.
    std::vector<std::string> transformable_classes() const;
    std::vector<std::string> non_transformable_classes() const;

    std::size_t total() const { return status_.size(); }
    std::size_t non_transformable_count() const;
    double non_transformable_fraction() const;

    /// Count of non-transformable classes per reason.
    std::map<Reason, std::size_t> reason_histogram() const;

    friend Analysis analyze(const model::ClassPool& pool);

private:
    std::map<std::string, ClassStatus> status_;
};

/// Runs the Section 2.4 analysis on `pool`.
Analysis analyze(const model::ClassPool& pool);

}  // namespace rafda::transform
