#include "transform/local_binder.hpp"

#include <memory>
#include <set>

#include "support/error.hpp"
#include "transform/naming.hpp"

namespace rafda::transform {

using vm::Interpreter;
using vm::Value;

void bind_local_factories(Interpreter& interp, const TransformReport& report) {
    // clinit-once bookkeeping shared by all discover bindings; inserting
    // before invoking clinit gives JVM-style tolerance of initialisation
    // cycles between class singletons.
    auto initialized = std::make_shared<std::set<std::string>>();

    for (const std::string& cls : report.substituted_classes()) {
        const std::string o_local = naming::o_local(cls);
        interp.register_native(
            naming::o_factory(cls), "make", "()L" + naming::o_int(cls) + ";",
            [o_local](Interpreter& vm, const Value&, std::vector<Value>) {
                return vm.construct(o_local, "()V", {});
            });

        const std::string c_local = naming::c_local(cls);
        const std::string c_factory = naming::c_factory(cls);
        const std::string c_int_desc = "L" + naming::c_int(cls) + ";";
        interp.register_native(
            c_factory, "discover", "()" + c_int_desc,
            [initialized, cls, c_local, c_factory, c_int_desc](
                Interpreter& vm, const Value&, std::vector<Value>) {
                Value me = vm.call_static(c_local, naming::kSingletonGetter,
                                          "()" + c_int_desc);
                if (initialized->insert(cls).second) {
                    vm.call_static(c_factory, "clinit", "(" + c_int_desc + ")V", {me});
                }
                return me;
            });
    }
}

Value call_transformed_static(Interpreter& interp, const model::ClassPool& original_pool,
                              const TransformReport& report, const std::string& cls,
                              const std::string& method, const std::string& desc,
                              std::vector<Value> args) {
    if (!report.substituted(cls))
        // Class kept its original form; call it directly.
        return interp.call_static(cls, method, desc, std::move(args));
    Value me = interp.call_static(naming::c_factory(cls), "discover",
                                  "()L" + naming::c_int(cls) + ";");
    return interp.call_virtual(me, method, report.map_method_desc(original_pool, desc),
                               std::move(args));
}

}  // namespace rafda::transform
