#include "transform/pipeline.hpp"

#include <algorithm>

#include "model/verifier.hpp"
#include "support/error.hpp"
#include "support/log.hpp"
#include "transform/naming.hpp"
#include "transform/rewriter.hpp"

namespace rafda::transform {

TransformReport::TransformReport(Analysis analysis, std::vector<std::string> substituted,
                                 std::vector<std::string> protocols)
    : analysis_(std::move(analysis)),
      substituted_(std::move(substituted)),
      protocols_(std::move(protocols)) {
    std::sort(substituted_.begin(), substituted_.end());
}

bool TransformReport::substituted(const std::string& cls) const {
    return std::binary_search(substituted_.begin(), substituted_.end(), cls);
}

std::string TransformReport::map_method_desc(const model::ClassPool& original_pool,
                                             const std::string& desc) const {
    Substitutables subst(original_pool, analysis_, substituted_);
    return map_sig(subst, model::MethodSig::parse(desc)).descriptor();
}

PipelineResult run_pipeline(const model::ClassPool& original,
                            const PipelineOptions& options) {
    Analysis analysis = analyze(original);
    Substitutables subst =
        options.substitutable
            ? Substitutables(original, analysis, *options.substitutable)
            : Substitutables(original, analysis);

    model::ClassPool out;
    std::vector<std::string> substituted;

    for (const model::ClassFile* cf : original.all()) {
        if (!analysis.transformable(cf->name)) {
            out.add(*cf);  // non-transformable: keep the original form
            continue;
        }
        if (cf->is_interface) {
            out.add(rewrite_interface(subst, *cf));
            continue;
        }
        if (!subst.contains(cf->name)) {
            // Transformable but, by policy, not substitutable: keep the
            // class, redirect its references at the substituted families.
            out.add(rewrite_in_place(subst, *cf));
            continue;
        }
        substituted.push_back(cf->name);
        for (model::ClassFile& gen : generate_family(subst, *cf, options.generator))
            out.add(std::move(gen));
    }

    log_info("transform", "substituted ", substituted.size(), " of ", original.size(),
             " classes (", analysis.non_transformable_count(), " non-transformable)");

    if (options.verify_output) model::verify_pool(out);

    return PipelineResult{std::move(out),
                          TransformReport(std::move(analysis), std::move(substituted),
                                          options.generator.protocols)};
}

}  // namespace rafda::transform
