#include "transform/pipeline.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <optional>

#include "model/verifier.hpp"
#include "obs/metrics.hpp"
#include "support/error.hpp"
#include "support/log.hpp"
#include "support/thread_pool.hpp"
#include "transform/naming.hpp"
#include "transform/rewriter.hpp"

namespace rafda::transform {

TransformReport::TransformReport(Analysis analysis, std::vector<std::string> substituted,
                                 std::vector<std::string> protocols)
    : analysis_(std::move(analysis)),
      substituted_(std::move(substituted)),
      protocols_(std::move(protocols)) {
    std::sort(substituted_.begin(), substituted_.end());
}

bool TransformReport::substituted(const std::string& cls) const {
    return std::binary_search(substituted_.begin(), substituted_.end(), cls);
}

std::string TransformReport::map_method_desc(const model::ClassPool& original_pool,
                                             const std::string& desc) const {
    Substitutables subst(original_pool, analysis_, substituted_);
    return map_sig(subst, model::MethodSig::parse(desc)).descriptor();
}

std::size_t resolve_transform_threads(std::size_t requested) {
    if (requested != 0) return requested;
    if (const char* env = std::getenv("RAFDA_TRANSFORM_THREADS")) {
        char* end = nullptr;
        const unsigned long v = std::strtoul(env, &end, 10);
        if (end != env && *end == '\0' && v >= 1) return static_cast<std::size_t>(v);
    }
    return support::ThreadPool::hardware_threads();
}

namespace {

/// Microseconds elapsed since `since` on the wall clock (the transform
/// side runs outside the simulation, so real time is the honest metric).
std::uint64_t us_since(std::chrono::steady_clock::time_point since) {
    return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                          std::chrono::steady_clock::now() - since)
                                          .count());
}

}  // namespace

PipelineResult run_pipeline(const model::ClassPool& original,
                            const PipelineOptions& options) {
    const std::size_t nthreads = resolve_transform_threads(options.threads);
    // A one-thread "pool" would only add scheduling bookkeeping; serial
    // runs skip it entirely so thread count 1 is the plain serial program.
    std::optional<support::ThreadPool> pool_storage;
    support::ThreadPool* workers = nullptr;
    if (nthreads > 1) workers = &pool_storage.emplace(nthreads);

    auto phase_start = std::chrono::steady_clock::now();
    Analysis analysis = analyze(original, workers);
    const std::uint64_t analyze_us = us_since(phase_start);

    Substitutables subst =
        options.substitutable
            ? Substitutables(original, analysis, *options.substitutable)
            : Substitutables(original, analysis);

    // Fan the per-class artefact production out across the pool.  Each
    // slot is written by exactly one worker; the merge below is the only
    // consumer and runs after the barrier.
    phase_start = std::chrono::steady_clock::now();
    const std::vector<const model::ClassFile*> inputs = original.all();
    struct PerClass {
        std::vector<model::ClassFile> artefacts;
        bool substituted = false;
    };
    std::vector<PerClass> produced(inputs.size());
    auto produce = [&](std::size_t i) {
        const model::ClassFile& cf = *inputs[i];
        PerClass& slot = produced[i];
        if (!analysis.transformable(cf.name)) {
            slot.artefacts.push_back(cf);  // non-transformable: original form
        } else if (cf.is_interface) {
            slot.artefacts.push_back(rewrite_interface(subst, cf));
        } else if (!subst.contains(cf.name)) {
            // Transformable but, by policy, not substitutable: keep the
            // class, redirect its references at the substituted families.
            slot.artefacts.push_back(rewrite_in_place(subst, cf));
        } else {
            slot.substituted = true;
            slot.artefacts = generate_family(subst, cf, options.generator);
        }
    };
    if (workers) {
        workers->for_each_index(inputs.size(), produce);
    } else {
        for (std::size_t i = 0; i < inputs.size(); ++i) produce(i);
    }

    // Deterministic merge: input name order, artefacts in generation
    // order — the exact add sequence of the serial loop.
    model::ClassPool out;
    std::vector<std::string> substituted;
    for (std::size_t i = 0; i < inputs.size(); ++i) {
        if (produced[i].substituted) substituted.push_back(inputs[i]->name);
        for (model::ClassFile& gen : produced[i].artefacts) out.add(std::move(gen));
    }
    const std::uint64_t generate_us = us_since(phase_start);

    log_info("transform", "substituted ", substituted.size(), " of ", original.size(),
             " classes (", analysis.non_transformable_count(), " non-transformable, ",
             nthreads, " threads)");

    phase_start = std::chrono::steady_clock::now();
    if (options.verify_output) model::verify_pool(out, workers);
    const std::uint64_t verify_us = us_since(phase_start);

    if (options.metrics) {
        obs::Registry& reg = *options.metrics;
        reg.counter("transform.runs").add(1);
        reg.counter("transform.analyze_us").add(analyze_us);
        reg.counter("transform.generate_us").add(generate_us);
        reg.counter("transform.verify_us").add(verify_us);
        reg.gauge("transform.pool.threads").set(static_cast<std::int64_t>(nthreads));
        if (workers) {
            reg.counter("transform.pool.tasks").add(workers->items_executed());
            reg.counter("transform.pool.steals").add(workers->steals());
        }
    }

    return PipelineResult{std::move(out),
                          TransformReport(std::move(analysis), std::move(substituted),
                                          options.generator.protocols)};
}

}  // namespace rafda::transform
