#include "transform/rewriter.hpp"

#include <algorithm>

#include "support/error.hpp"
#include "transform/naming.hpp"

namespace rafda::transform {

using model::Code;
using model::Instruction;
using model::MethodSig;
using model::Op;
using model::TypeDesc;

Substitutables::Substitutables(const model::ClassPool& pool, const Analysis& analysis)
    : pool_(&pool), analysis_(&analysis) {}

Substitutables::Substitutables(const model::ClassPool& pool, const Analysis& analysis,
                               std::vector<std::string> selected)
    : pool_(&pool), analysis_(&analysis), filtered_(true), selected_(std::move(selected)) {
    std::sort(selected_.begin(), selected_.end());
}

bool Substitutables::contains(const std::string& cls) const {
    if (!analysis_->transformable(cls)) return false;
    const model::ClassFile* cf = pool_->find(cls);
    if (!cf || cf->is_interface) return false;
    if (!filtered_) return true;
    return std::binary_search(selected_.begin(), selected_.end(), cls);
}

model::TypeDesc map_type(const Substitutables& subst, const model::TypeDesc& t) {
    if (t.is_array()) return TypeDesc::array(map_type(subst, t.element()));
    if (!t.is_ref()) return t;
    if (!subst.contains(t.class_name())) return t;
    return TypeDesc::ref(naming::o_int(t.class_name()));
}

model::MethodSig map_sig(const Substitutables& subst, const model::MethodSig& sig) {
    std::vector<TypeDesc> params;
    params.reserve(sig.params().size());
    for (const TypeDesc& p : sig.params()) params.push_back(map_type(subst, p));
    return MethodSig(std::move(params), map_type(subst, sig.ret()));
}

namespace {

class Rewriter {
public:
    Rewriter(const RewriteContext& ctx, const Code& in) : ctx_(ctx), in_(in) {}

    Code run() {
        const Substitutables& subst = *ctx_.subst;
        const model::ClassPool& pool = subst.pool();
        const int shift = ctx_.static_family ? 1 : 0;

        for (int pc = 0; pc < static_cast<int>(in_.instrs.size()); ++pc) {
            new_pc_of_.push_back(static_cast<int>(out_.size()));
            const Instruction& i = in_.instrs[pc];

            switch (i.op) {
                case Op::Load:
                case Op::Store: {
                    Instruction copy = i;
                    copy.a += shift;
                    emit(copy);
                    break;
                }
                case Op::NewArray: {
                    Instruction copy = i;
                    copy.desc = map_type(subst, TypeDesc::parse(i.desc)).descriptor();
                    emit(copy);
                    break;
                }
                case Op::New: {
                    if (!subst.contains(i.owner)) {
                        emit(i);
                        break;
                    }
                    emit(model::ins::invoke_static(
                        naming::o_factory(i.owner), "make",
                        MethodSig({}, TypeDesc::ref(naming::o_int(i.owner)))));
                    break;
                }
                case Op::InvokeSpecial: {
                    MethodSig orig = MethodSig::parse(i.desc);
                    if (!subst.contains(i.owner)) {
                        // Constructor of a kept class: signature still maps
                        // (kept transformable classes are retyped in place).
                        emit(model::ins::invoke_special(i.owner, i.member,
                                                        map_sig(subst, orig)));
                        break;
                    }
                    // new A(...) -> A_O_Factory.init(that, ...)
                    std::vector<TypeDesc> params;
                    params.push_back(TypeDesc::ref(naming::o_int(i.owner)));
                    for (const TypeDesc& p : orig.params())
                        params.push_back(map_type(subst, p));
                    emit(model::ins::invoke_static(
                        naming::o_factory(i.owner), "init",
                        MethodSig(std::move(params), TypeDesc::void_())));
                    break;
                }
                case Op::GetField: {
                    TypeDesc mapped = map_type(subst, TypeDesc::parse(i.desc));
                    if (!subst.contains(i.owner)) {
                        emit(model::ins::get_field(i.owner, i.member, mapped));
                        break;
                    }
                    emit(model::ins::invoke_interface(naming::o_int(i.owner),
                                                      naming::getter(i.member),
                                                      MethodSig({}, mapped)));
                    break;
                }
                case Op::PutField: {
                    TypeDesc mapped = map_type(subst, TypeDesc::parse(i.desc));
                    if (!subst.contains(i.owner)) {
                        emit(model::ins::put_field(i.owner, i.member, mapped));
                        break;
                    }
                    emit(model::ins::invoke_interface(
                        naming::o_int(i.owner), naming::setter(i.member),
                        MethodSig({mapped}, TypeDesc::void_())));
                    break;
                }
                case Op::GetStatic: {
                    const model::ClassFile* declaring =
                        pool.resolve_static_field(i.owner, i.member);
                    TypeDesc mapped = map_type(subst, TypeDesc::parse(i.desc));
                    if (!declaring || !subst.contains(declaring->name)) {
                        emit(model::ins::get_static(i.owner, i.member, mapped));
                        break;
                    }
                    push_static_receiver(declaring->name);
                    emit(model::ins::invoke_interface(naming::c_int(declaring->name),
                                                      naming::getter(i.member),
                                                      MethodSig({}, mapped)));
                    break;
                }
                case Op::PutStatic: {
                    const model::ClassFile* declaring =
                        pool.resolve_static_field(i.owner, i.member);
                    TypeDesc mapped = map_type(subst, TypeDesc::parse(i.desc));
                    if (!declaring || !subst.contains(declaring->name)) {
                        emit(model::ins::put_static(i.owner, i.member, mapped));
                        break;
                    }
                    // Stack holds [value]; produce [receiver, value].
                    push_static_receiver(declaring->name);
                    emit(model::ins::swap());
                    emit(model::ins::invoke_interface(
                        naming::c_int(declaring->name), naming::setter(i.member),
                        MethodSig({mapped}, TypeDesc::void_())));
                    break;
                }
                case Op::InvokeVirtual: {
                    MethodSig mapped = map_sig(subst, MethodSig::parse(i.desc));
                    if (!subst.contains(i.owner)) {
                        emit(model::ins::invoke_virtual(i.owner, i.member, mapped));
                        break;
                    }
                    emit(model::ins::invoke_interface(naming::o_int(i.owner), i.member,
                                                      mapped));
                    break;
                }
                case Op::InvokeInterface: {
                    // User interfaces are rewritten in place: same owner,
                    // mapped signature.
                    emit(model::ins::invoke_interface(
                        i.owner, i.member, map_sig(subst, MethodSig::parse(i.desc))));
                    break;
                }
                case Op::InvokeStatic: {
                    // Find the declaring class along the super chain.
                    std::string declaring = i.owner;
                    for (const model::ClassFile* cur = pool.find(i.owner); cur;
                         cur = cur->super_name.empty() ? nullptr
                                                       : pool.find(cur->super_name)) {
                        if (cur->find_method(i.member, i.desc)) {
                            declaring = cur->name;
                            break;
                        }
                    }
                    MethodSig mapped = map_sig(subst, MethodSig::parse(i.desc));
                    if (!subst.contains(declaring)) {
                        emit(model::ins::invoke_static(i.owner, i.member, mapped));
                        break;
                    }
                    emit(model::ins::invoke_static(naming::c_factory(declaring),
                                                   naming::static_forwarder(i.member),
                                                   mapped));
                    break;
                }
                default:
                    emit(i);
                    break;
            }
        }
        new_pc_of_.push_back(static_cast<int>(out_.size()));  // end sentinel

        // Remap branch targets and handlers.
        Code out;
        out.instrs = std::move(out_);
        for (Instruction& i : out.instrs)
            if (model::is_branch(i.op)) i.a = new_pc_of_[static_cast<std::size_t>(i.a)];
        for (const model::Handler& h : in_.handlers)
            out.handlers.push_back(model::Handler{
                new_pc_of_[static_cast<std::size_t>(h.start)],
                new_pc_of_[static_cast<std::size_t>(h.end)],
                new_pc_of_[static_cast<std::size_t>(h.target)], h.class_name});
        out.max_locals = in_.max_locals + shift;
        return out;
    }

private:
    void emit(Instruction i) { out_.push_back(std::move(i)); }

    /// Pushes the receiver for a static-member access of class `declaring`:
    /// slot 0 for self-access in the static family, discover() otherwise.
    void push_static_receiver(const std::string& declaring) {
        if (ctx_.static_family && declaring == ctx_.self) {
            emit(model::ins::load(0));
        } else {
            emit(model::ins::invoke_static(
                naming::c_factory(declaring), "discover",
                MethodSig({}, TypeDesc::ref(naming::c_int(declaring)))));
        }
    }

    const RewriteContext& ctx_;
    const Code& in_;
    std::vector<Instruction> out_;
    std::vector<int> new_pc_of_;
};

}  // namespace

model::Code rewrite_code(const RewriteContext& ctx, const model::Code& in) {
    if (!ctx.subst) throw TransformError("rewrite context not initialised");
    return Rewriter(ctx, in).run();
}

}  // namespace rafda::transform
