#include "transform/generator.hpp"

#include <set>

#include "model/builder.hpp"
#include "support/error.hpp"
#include "transform/naming.hpp"
#include "transform/rewriter.hpp"

namespace rafda::transform {

using model::ClassBuilder;
using model::ClassFile;
using model::CodeBuilder;
using model::Field;
using model::Label;
using model::Method;
using model::MethodSig;
using model::TypeDesc;
using model::Visibility;

namespace {

/// All members the *instance* interface of `cls` must expose, walking up
/// through substitutable ancestors and implemented transformable
/// interfaces.  Used for proxies, which implement everything directly.
std::vector<ExtractedMember> collect_instance_members(const Substitutables& subst,
                                                      const ClassFile& cls) {
    const model::ClassPool& pool = subst.pool();
    std::vector<ExtractedMember> out;
    std::set<std::string> seen;  // name + descriptor
    auto add = [&](const std::string& name, const MethodSig& mapped) {
        if (seen.insert(name + mapped.descriptor()).second)
            out.push_back(ExtractedMember{name, mapped});
    };

    std::set<std::string> visited;
    std::vector<const ClassFile*> work{&cls};
    while (!work.empty()) {
        const ClassFile* c = work.back();
        work.pop_back();
        if (!visited.insert(c->name).second) continue;
        // Stop at ancestors outside the family: a non-substitutable class
        // keeps its members in raw form, a transformable interface is
        // rewritten in place and contributes its (mapped) methods.
        if (c->is_interface) {
            if (!subst.analysis().transformable(c->name)) continue;
        } else if (!subst.contains(c->name)) {
            continue;
        }
        for (const Field& f : c->fields) {
            if (f.is_static) continue;
            TypeDesc mapped = map_type(subst, f.type);
            add(naming::getter(f.name), MethodSig({}, mapped));
            add(naming::setter(f.name), MethodSig({mapped}, TypeDesc::void_()));
        }
        for (const Method& m : c->methods) {
            if (m.is_static || m.is_ctor()) continue;
            add(m.name, map_sig(subst, m.sig));
        }
        if (!c->super_name.empty())
            if (const ClassFile* s = pool.find(c->super_name)) work.push_back(s);
        for (const std::string& i : c->interfaces)
            if (const ClassFile* icf = pool.find(i)) work.push_back(icf);
    }
    return out;
}

/// The static members declared by `cls` itself (statics are not inherited
/// into the extracted interface; each class owns its static family).
std::vector<ExtractedMember> collect_static_members(const Substitutables& subst,
                                                    const ClassFile& cls) {
    std::vector<ExtractedMember> out;
    for (const Field& f : cls.fields) {
        if (!f.is_static) continue;
        TypeDesc mapped = map_type(subst, f.type);
        out.push_back(ExtractedMember{naming::getter(f.name), MethodSig({}, mapped)});
        out.push_back(ExtractedMember{naming::setter(f.name),
                                      MethodSig({mapped}, TypeDesc::void_())});
    }
    for (const Method& m : cls.methods) {
        if (!m.is_static || m.is_clinit()) continue;
        out.push_back(ExtractedMember{m.name, map_sig(subst, m.sig)});
    }
    return out;
}

ClassFile make_o_int(const Substitutables& subst, const ClassFile& cls) {
    ClassBuilder b(naming::o_int(cls.name));
    b.interface_();
    // Inherit the super family's interface so implementations can be passed
    // wherever the supertype interface is expected.
    if (!cls.super_name.empty() && subst.contains(cls.super_name))
        b.implements(naming::o_int(cls.super_name));
    for (const std::string& i : cls.interfaces)
        b.implements(i);  // user interfaces are rewritten in place, same name
    for (const Field& f : cls.fields) {
        if (f.is_static) continue;
        TypeDesc mapped = map_type(subst, f.type);
        b.abstract_method(naming::getter(f.name), MethodSig({}, mapped));
        b.abstract_method(naming::setter(f.name), MethodSig({mapped}, TypeDesc::void_()));
    }
    for (const Method& m : cls.methods) {
        if (m.is_static || m.is_ctor()) continue;
        b.abstract_method(m.name, map_sig(subst, m.sig));
    }
    return b.build();
}

ClassFile make_o_local(const Substitutables& subst, const ClassFile& cls) {
    ClassBuilder b(naming::o_local(cls.name));
    const std::string self = naming::o_local(cls.name);
    if (!cls.super_name.empty()) {
        // Substitutable super: extend its local implementation.  A
        // non-substitutable super keeps its original form and is extended
        // directly (its fields/methods stay raw).
        b.extends(subst.contains(cls.super_name) ? naming::o_local(cls.super_name)
                                                 : cls.super_name);
    }
    b.implements(naming::o_int(cls.name));

    // The default parameterless constructor the paper adds (Sec 2.1).  All
    // original constructor logic lives in the factory init methods.
    {
        CodeBuilder ctor;
        ctor.ret();
        Method m;
        m.name = "<init>";
        m.sig = MethodSig({}, TypeDesc::void_());
        m.code = ctor.finish(1);
        b.method(std::move(m));
    }

    RewriteContext ctx{&subst, cls.name, /*static_family=*/false};

    for (const Field& f : cls.fields) {
        if (f.is_static) continue;
        TypeDesc mapped = map_type(subst, f.type);
        b.field(f.name, mapped, Visibility::Private, /*is_final=*/false);
        // get_f / set_f are the only direct field accesses left.
        CodeBuilder get;
        get.load(0).get_field(self, f.name, mapped).ret_value();
        b.method(naming::getter(f.name), MethodSig({}, mapped), std::move(get));
        CodeBuilder set;
        set.load(0).load(1).put_field(self, f.name, mapped).ret();
        b.method(naming::setter(f.name), MethodSig({mapped}, TypeDesc::void_()), std::move(set));
    }
    for (const Method& m : cls.methods) {
        if (m.is_static || m.is_ctor()) continue;
        Method out;
        out.name = m.name;
        out.sig = map_sig(subst, m.sig);
        out.vis = Visibility::Public;  // publicization, Sec 2.1
        out.code = rewrite_code(ctx, m.code);
        b.method(std::move(out));
    }
    return b.build();
}

/// A proxy class: every member native, plus routing fields.
ClassFile make_proxy(const std::string& name, const std::string& iface,
                     const std::vector<ExtractedMember>& members) {
    ClassBuilder b(name);
    b.implements(iface);
    b.field(naming::kProxyNodeField, TypeDesc::int_(), Visibility::Public);
    b.field(naming::kProxyOidField, TypeDesc::long_(), Visibility::Public);
    {
        CodeBuilder ctor;
        ctor.ret();  // protocol-specific initialisation is bound natively
        Method m;
        m.name = "<init>";
        m.sig = MethodSig({}, TypeDesc::void_());
        m.code = ctor.finish(1);
        b.method(std::move(m));
    }
    for (const ExtractedMember& em : members) {
        Method m;
        m.name = em.name;
        m.sig = em.sig;
        m.is_native = true;
        b.method(std::move(m));
    }
    return b.build();
}

ClassFile make_c_int(const Substitutables& subst, const ClassFile& cls) {
    ClassBuilder b(naming::c_int(cls.name));
    b.interface_();
    for (const ExtractedMember& em : collect_static_members(subst, cls))
        b.abstract_method(em.name, em.sig);
    return b.build();
}

ClassFile make_c_local(const Substitutables& subst, const ClassFile& cls) {
    const std::string self = naming::c_local(cls.name);
    const TypeDesc iface_t = TypeDesc::ref(naming::c_int(cls.name));
    ClassBuilder b(self);
    b.implements(naming::c_int(cls.name));

    {
        CodeBuilder ctor;
        ctor.ret();
        Method m;
        m.name = "<init>";
        m.sig = MethodSig({}, TypeDesc::void_());
        m.code = ctor.finish(1);
        b.method(std::move(m));
    }

    RewriteContext ctx{&subst, cls.name, /*static_family=*/true};

    // Static fields become instance fields of the singleton (Sec 2.2).
    for (const Field& f : cls.fields) {
        if (!f.is_static) continue;
        TypeDesc mapped = map_type(subst, f.type);
        b.field(f.name, mapped, Visibility::Private);
        CodeBuilder get;
        get.load(0).get_field(self, f.name, mapped).ret_value();
        b.method(naming::getter(f.name), MethodSig({}, mapped), std::move(get));
        CodeBuilder set;
        set.load(0).load(1).put_field(self, f.name, mapped).ret();
        b.method(naming::setter(f.name), MethodSig({mapped}, TypeDesc::void_()),
                 std::move(set));
    }
    // Static methods become instance methods (locals shift by one).
    for (const Method& m : cls.methods) {
        if (!m.is_static || m.is_clinit()) continue;
        Method out;
        out.name = m.name;
        out.sig = map_sig(subst, m.sig);
        out.vis = Visibility::Public;
        out.code = rewrite_code(ctx, m.code);
        b.method(std::move(out));
    }

    // Singleton declarations, as in Fig 4:
    //   private static X_C_Int me = new X_C_Local();
    //   public static X_C_Int get_me() { return me; }
    b.static_field(naming::kSingletonField, iface_t, Visibility::Private);
    {
        CodeBuilder get;
        Label make = get.new_label();
        get.get_static(self, naming::kSingletonField, iface_t)
            .const_null()
            .cmp(model::Op::CmpEq)
            .if_true(make)
            .get_static(self, naming::kSingletonField, iface_t)
            .ret_value();
        get.bind(make);
        get.new_(self)
            .dup()
            .invoke_special(self, "<init>", MethodSig({}, TypeDesc::void_()))
            .put_static(self, naming::kSingletonField, iface_t)
            .get_static(self, naming::kSingletonField, iface_t)
            .ret_value();
        b.static_method(naming::kSingletonGetter, MethodSig({}, iface_t), std::move(get));
    }
    return b.build();
}

ClassFile make_o_factory(const Substitutables& subst, const ClassFile& cls) {
    ClassBuilder b(naming::o_factory(cls.name));
    const TypeDesc iface_t = TypeDesc::ref(naming::o_int(cls.name));

    // make() is native: the middleware decides which implementation to
    // instantiate (policy, Sec 2.3).  transform::bind_local_factories gives
    // the single-address-space binding.
    {
        Method m;
        m.name = "make";
        m.sig = MethodSig({}, iface_t);
        m.is_native = true;
        m.is_static = true;
        b.method(std::move(m));
    }

    // One init per original constructor, containing the constructor's
    // rewritten body with `that` in slot 0 (where `this` was).
    RewriteContext ctx{&subst, cls.name, /*static_family=*/false};
    for (const Method& m : cls.methods) {
        if (!m.is_ctor()) continue;
        Method out;
        out.name = "init";
        std::vector<TypeDesc> params;
        params.push_back(iface_t);
        for (const TypeDesc& p : m.sig.params())
            params.push_back(map_type(subst, p));
        out.sig = MethodSig(std::move(params), TypeDesc::void_());
        out.is_static = true;
        out.code = rewrite_code(ctx, m.code);
        b.method(std::move(out));
    }
    return b.build();
}

ClassFile make_c_factory(const Substitutables& subst, const ClassFile& cls) {
    ClassBuilder b(naming::c_factory(cls.name));
    const TypeDesc iface_t = TypeDesc::ref(naming::c_int(cls.name));
    const std::string c_int_name = naming::c_int(cls.name);

    // discover() is native: the middleware returns the singleton (local or
    // proxy) and runs clinit exactly once (Sec 2.3).
    {
        Method m;
        m.name = "discover";
        m.sig = MethodSig({}, iface_t);
        m.is_native = true;
        m.is_static = true;
        b.method(std::move(m));
    }

    // clinit(that) mirrors the original static initialiser (Fig 5); when
    // the class has none, an empty method keeps the protocol uniform.
    {
        Method out;
        out.name = "clinit";
        out.sig = MethodSig({iface_t}, TypeDesc::void_());
        out.is_static = true;
        if (const Method* orig = cls.find_method("<clinit>", "()V")) {
            RewriteContext ctx{&subst, cls.name, /*static_family=*/true};
            out.code = rewrite_code(ctx, orig->code);
        } else {
            CodeBuilder empty;
            empty.ret();
            out.code = empty.finish(1);
        }
        b.method(std::move(out));
    }

    // call_m forwarders: static call sites route through these, which go
    // through discover() to the singleton (implementation note: avoids
    // inserting a receiver under already-pushed arguments at call sites).
    for (const Method& m : cls.methods) {
        if (!m.is_static || m.is_clinit()) continue;
        MethodSig mapped = map_sig(subst, m.sig);
        CodeBuilder fwd;
        fwd.invoke_static(naming::c_factory(cls.name), "discover",
                          MethodSig({}, iface_t));
        for (int p = 0; p < static_cast<int>(mapped.params().size()); ++p) fwd.load(p);
        fwd.invoke_interface(c_int_name, m.name, mapped);
        if (mapped.ret().is_void()) fwd.ret();
        else fwd.ret_value();
        b.static_method(naming::static_forwarder(m.name), mapped, std::move(fwd));
    }
    return b.build();
}

}  // namespace

std::vector<model::ClassFile> generate_family(const Substitutables& subst,
                                              const model::ClassFile& cls,
                                              const GeneratorOptions& options) {
    if (cls.is_interface)
        throw TransformError("generate_family on interface " + cls.name);
    if (!subst.contains(cls.name))
        throw TransformError("generate_family on non-substitutable class " + cls.name);

    std::vector<ClassFile> out;
    out.push_back(make_o_int(subst, cls));
    out.push_back(make_o_local(subst, cls));
    std::vector<ExtractedMember> imembers = collect_instance_members(subst, cls);
    for (const std::string& proto : options.protocols)
        out.push_back(make_proxy(naming::o_proxy(cls.name, proto), naming::o_int(cls.name),
                                 imembers));
    out.push_back(make_c_int(subst, cls));
    out.push_back(make_c_local(subst, cls));
    std::vector<ExtractedMember> smembers = collect_static_members(subst, cls);
    for (const std::string& proto : options.protocols)
        out.push_back(make_proxy(naming::c_proxy(cls.name, proto), naming::c_int(cls.name),
                                 smembers));
    out.push_back(make_o_factory(subst, cls));
    out.push_back(make_c_factory(subst, cls));
    return out;
}

model::ClassFile rewrite_interface(const Substitutables& subst,
                                   const model::ClassFile& iface) {
    if (!iface.is_interface)
        throw TransformError("rewrite_interface on class " + iface.name);
    ClassFile out = iface;
    for (Method& m : out.methods) m.sig = map_sig(subst, m.sig);
    return out;
}

model::ClassFile rewrite_in_place(const Substitutables& subst,
                                  const model::ClassFile& cls) {
    if (cls.is_interface) return rewrite_interface(subst, cls);
    ClassFile out = cls;
    for (model::Field& f : out.fields) f.type = map_type(subst, f.type);
    RewriteContext ctx{&subst, cls.name, /*static_family=*/false};
    for (Method& m : out.methods) {
        m.sig = map_sig(subst, m.sig);
        if (!m.is_native && !m.is_abstract) m.code = rewrite_code(ctx, m.code);
    }
    return out;
}

}  // namespace rafda::transform
