// Generation of the per-class artefact family (paper Figures 3, 4, 5).
//
// For a substitutable class A the generator emits:
//   A_O_Int      — interface over instance members (fields as properties)
//   A_O_Local    — the non-remote implementation
//   A_O_Proxy_P  — one remote proxy per protocol P (all methods native;
//                  the distributed runtime binds them to marshalling code)
//   A_C_Int      — interface over static members, made non-static
//   A_C_Local    — singleton implementation (me / get_me as in Fig 4)
//   A_C_Proxy_P  — remote proxies for the static part
//   A_O_Factory  — native make() (policy hook) + init(...) per constructor
//   A_C_Factory  — native discover() (policy hook) + clinit(that) +
//                  call_m forwarders for static call sites
#pragma once

#include <string>
#include <vector>

#include "model/classfile.hpp"
#include "model/classpool.hpp"
#include "transform/analysis.hpp"
#include "transform/rewriter.hpp"

namespace rafda::transform {

struct GeneratorOptions {
    /// Protocol suffixes to emit proxies for.
    std::vector<std::string> protocols{"RMI", "SOAP"};
};

/// Members collected for interface extraction: all instance (or static)
/// properties and methods A exposes, including those inherited from
/// transformable ancestors (used to emit complete proxies).
struct ExtractedMember {
    std::string name;
    model::MethodSig sig;  // mapped signature
};

/// Generates the eight artefacts for class `cls` (must be substitutable).
/// Emitted classes reference families of other substitutable classes by
/// name; add all families to one pool before verifying.
std::vector<model::ClassFile> generate_family(const Substitutables& subst,
                                              const model::ClassFile& cls,
                                              const GeneratorOptions& options);

/// Rewrites a transformable user-defined interface in place: method
/// signatures are mapped to extracted-interface types.
model::ClassFile rewrite_interface(const Substitutables& subst,
                                   const model::ClassFile& iface);

/// Rewrites a transformable-but-not-substituted class in place: it keeps
/// its name, fields and statics, but its types and call sites are redirected
/// at the substituted families ("Policy dictates which classes are
/// substitutable", Sec 1).
model::ClassFile rewrite_in_place(const Substitutables& subst,
                                  const model::ClassFile& cls);

}  // namespace rafda::transform
