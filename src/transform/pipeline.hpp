// The transformation pipeline: original pool -> componentised pool.
//
// Runs the Section 2.4 analysis, generates the artefact family for every
// transformable class, rewrites transformable user interfaces in place,
// copies non-transformable classes unchanged, and (optionally) verifies
// the output.  The result plus the returned report is everything a runtime
// needs to execute the program locally (transform::bind_local_factories)
// or distributed (runtime::Node).
//
// The per-class work (family generation, in-place rewrites, verification)
// fans out over a work-stealing thread pool; results are merged into the
// output pool in input name order, so the produced ClassPool — and its
// RIRB serialisation — is byte-identical at every thread count, including
// the fully serial RAFDA_TRANSFORM_THREADS=1.  Scheduling never decides
// output; it only decides wall time.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "model/classpool.hpp"
#include "transform/analysis.hpp"
#include "transform/generator.hpp"

namespace rafda::obs {
class Registry;
}

namespace rafda::transform {

struct PipelineOptions {
    GeneratorOptions generator;
    /// Verify the transformed pool (recommended; disable only in benches
    /// that time the pipeline itself).
    bool verify_output = true;
    /// Policy: which classes get substitutable families.  Empty optional =
    /// every transformable class (the default).  Transformable classes not
    /// selected keep their identity but are rewritten in place so both
    /// worlds compose.
    std::optional<std::vector<std::string>> substitutable;
    /// Worker threads for analysis graph construction, artefact generation
    /// and output verification.  0 = the RAFDA_TRANSFORM_THREADS
    /// environment variable when set, otherwise all hardware threads;
    /// 1 = fully serial (no pool is created).  The output is identical at
    /// any value.
    std::size_t threads = 0;
    /// Optional measurement sink: per-phase wall times
    /// (transform.analyze_us / generate_us / verify_us counters) and pool
    /// occupancy (transform.pool.threads gauge, transform.pool.tasks and
    /// transform.pool.steals counters) are recorded here per run.
    obs::Registry* metrics = nullptr;
};

/// Thread count `run_pipeline` actually uses for a requested value:
/// `requested` when non-zero, else RAFDA_TRANSFORM_THREADS when set to a
/// positive integer, else the hardware thread count.
std::size_t resolve_transform_threads(std::size_t requested);

/// What the pipeline did; consumed by binders, the distributed runtime and
/// the experiment harnesses.
class TransformReport {
public:
    TransformReport(Analysis analysis, std::vector<std::string> substituted,
                    std::vector<std::string> protocols);

    const Analysis& analysis() const noexcept { return analysis_; }
    /// Original names of classes replaced by families, sorted.
    const std::vector<std::string>& substituted_classes() const noexcept {
        return substituted_;
    }
    const std::vector<std::string>& protocols() const noexcept { return protocols_; }

    bool substituted(const std::string& cls) const;

    /// Maps an original method descriptor to the transformed one (reference
    /// parameters/results of substituted classes become _O_Int references).
    std::string map_method_desc(const model::ClassPool& original_pool,
                                const std::string& desc) const;

private:
    Analysis analysis_;
    std::vector<std::string> substituted_;
    std::vector<std::string> protocols_;
};

struct PipelineResult {
    model::ClassPool pool;  // the transformed program
    TransformReport report;
};

/// Transforms `original`.  The input pool must verify; the output pool is
/// verified when options.verify_output is set.
PipelineResult run_pipeline(const model::ClassPool& original,
                            const PipelineOptions& options = {});

}  // namespace rafda::transform
