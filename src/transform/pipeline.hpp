// The transformation pipeline: original pool -> componentised pool.
//
// Runs the Section 2.4 analysis, generates the artefact family for every
// transformable class, rewrites transformable user interfaces in place,
// copies non-transformable classes unchanged, and (optionally) verifies
// the output.  The result plus the returned report is everything a runtime
// needs to execute the program locally (transform::bind_local_factories)
// or distributed (runtime::Node).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "model/classpool.hpp"
#include "transform/analysis.hpp"
#include "transform/generator.hpp"

namespace rafda::transform {

struct PipelineOptions {
    GeneratorOptions generator;
    /// Verify the transformed pool (recommended; disable only in benches
    /// that time the pipeline itself).
    bool verify_output = true;
    /// Policy: which classes get substitutable families.  Empty optional =
    /// every transformable class (the default).  Transformable classes not
    /// selected keep their identity but are rewritten in place so both
    /// worlds compose.
    std::optional<std::vector<std::string>> substitutable;
};

/// What the pipeline did; consumed by binders, the distributed runtime and
/// the experiment harnesses.
class TransformReport {
public:
    TransformReport(Analysis analysis, std::vector<std::string> substituted,
                    std::vector<std::string> protocols);

    const Analysis& analysis() const noexcept { return analysis_; }
    /// Original names of classes replaced by families, sorted.
    const std::vector<std::string>& substituted_classes() const noexcept {
        return substituted_;
    }
    const std::vector<std::string>& protocols() const noexcept { return protocols_; }

    bool substituted(const std::string& cls) const;

    /// Maps an original method descriptor to the transformed one (reference
    /// parameters/results of substituted classes become _O_Int references).
    std::string map_method_desc(const model::ClassPool& original_pool,
                                const std::string& desc) const;

private:
    Analysis analysis_;
    std::vector<std::string> substituted_;
    std::vector<std::string> protocols_;
};

struct PipelineResult {
    model::ClassPool pool;  // the transformed program
    TransformReport report;
};

/// Transforms `original`.  The input pool must verify; the output pool is
/// verified when options.verify_output is set.
PipelineResult run_pipeline(const model::ClassPool& original,
                            const PipelineOptions& options = {});

}  // namespace rafda::transform
