// Call-site rewriting (paper Sections 2.1-2.3).
//
// Rewrites code so that it only uses extracted interface types:
//
//   getfield  C.f       ->  invokeinterface C_O_Int.get_f
//   putfield  C.f       ->  invokeinterface C_O_Int.set_f
//   getstatic C.s       ->  invokestatic D_C_Factory.discover
//                           invokeinterface D_C_Int.get_s
//   putstatic C.s       ->  ... discover; swap; invokeinterface D_C_Int.set_s
//   invokevirtual C.m   ->  invokeinterface C_O_Int.m
//   invokestatic  C.m   ->  invokestatic D_C_Factory.call_m   (forwarder)
//   new C               ->  invokestatic C_O_Factory.make
//   invokespecial C.<init> -> invokestatic C_O_Factory.init
//
// (D is the class on C's superclass chain that declares the static member.)
// Code generated for the *static* family (A_C_Local methods and the
// factory clinit) accesses the statics of its own class through slot 0 —
// `this` for A_C_Local instance methods, the `that` parameter for
// A_C_Factory.clinit — reproducing the paper's `get_z()` / `that.set_z(t)`
// forms.  Operands naming non-transformable classes are left untouched.
#pragma once

#include "model/classfile.hpp"
#include "model/classpool.hpp"
#include "transform/analysis.hpp"

namespace rafda::transform {

/// Which classes are substitutable ("Policy dictates which classes are
/// substitutable", Sec 1): transformable, not an interface, and — when a
/// policy filter is present — selected by it.  Only substitutable classes
/// get families; everything transformable still gets its references
/// retyped so the two worlds compose.
class Substitutables {
public:
    /// All transformable classes are substitutable.
    explicit Substitutables(const model::ClassPool& pool, const Analysis& analysis);
    /// Only the intersection of `selected` with the transformable classes.
    Substitutables(const model::ClassPool& pool, const Analysis& analysis,
                   std::vector<std::string> selected);

    bool contains(const std::string& cls) const;
    const Analysis& analysis() const noexcept { return *analysis_; }
    const model::ClassPool& pool() const noexcept { return *pool_; }

private:
    const model::ClassPool* pool_;
    const Analysis* analysis_;
    bool filtered_ = false;
    std::vector<std::string> selected_;  // sorted
};

/// Maps one type: a reference to a substitutable class C becomes a
/// reference to C_O_Int; interfaces and everything else stay.
model::TypeDesc map_type(const Substitutables& subst, const model::TypeDesc& t);

model::MethodSig map_sig(const Substitutables& subst, const model::MethodSig& sig);

struct RewriteContext {
    const Substitutables* subst = nullptr;
    /// Original class whose code is being rewritten.
    std::string self;
    /// True when the output lives in the static family (A_C_Local method,
    /// A_C_Factory.clinit): self static access goes through slot 0 and all
    /// local slots shift by one.
    bool static_family = false;
};

/// Rewrites a method body.  Branch targets and handler ranges are remapped
/// to the new instruction positions.
model::Code rewrite_code(const RewriteContext& ctx, const model::Code& in);

}  // namespace rafda::transform
