#include "transform/analysis.hpp"

#include "support/error.hpp"
#include "support/interner.hpp"
#include "support/thread_pool.hpp"

namespace rafda::transform {

std::string_view reason_name(Reason r) {
    switch (r) {
        case Reason::None: return "none";
        case Reason::NativeMethod: return "native-method";
        case Reason::SpecialClass: return "special-class";
        case Reason::SuperOfNonTransformable: return "super-of-non-transformable";
        case Reason::ReferencedByNonTransformable: return "referenced-by-non-transformable";
    }
    return "?";
}

const ClassStatus& Analysis::status_of(const std::string& cls) const {
    auto it = status_.find(cls);
    if (it == status_.end()) throw VerifyError("analysis has no class " + cls);
    return it->second;
}

bool Analysis::transformable(const std::string& cls) const {
    auto it = status_.find(cls);
    return it != status_.end() && it->second.verdict == Verdict::Transformable;
}

std::vector<std::string> Analysis::transformable_classes() const {
    std::vector<std::string> out;
    for (const auto& [name, st] : status_)
        if (st.verdict == Verdict::Transformable) out.push_back(name);
    return out;
}

std::vector<std::string> Analysis::non_transformable_classes() const {
    std::vector<std::string> out;
    for (const auto& [name, st] : status_)
        if (st.verdict == Verdict::NonTransformable) out.push_back(name);
    return out;
}

double Analysis::non_transformable_fraction() const {
    if (status_.empty()) return 0.0;
    return static_cast<double>(non_transformable_count_) /
           static_cast<double>(status_.size());
}

namespace {

using Id = support::Interner::Id;
constexpr Id kNoId = support::Interner::kNoId;

/// The class graph the analysis runs over: dense u32 ids in pool (name)
/// order, with hierarchy edges (super + interfaces) and reference edges
/// (in-pool entries of referenced_classes(), which are name-sorted, so id
/// order equals the original string iteration order).
struct ClassGraph {
    std::vector<const model::ClassFile*> classes;
    support::Interner ids;
    std::vector<Id> super_of;               // kNoId when absent / external
    std::vector<std::vector<Id>> hierarchy; // super then interfaces, in-pool only
    std::vector<std::vector<Id>> refs;      // rule-4 edges, name order
    std::vector<std::uint8_t> has_native;
};

ClassGraph build_graph(const model::ClassPool& pool, support::ThreadPool* threads) {
    ClassGraph g;
    g.classes = pool.all();
    const std::size_t n = g.classes.size();
    for (const model::ClassFile* cf : g.classes) g.ids.intern(cf->name);

    g.super_of.assign(n, kNoId);
    g.hierarchy.resize(n);
    g.refs.resize(n);
    g.has_native.assign(n, 0);

    const std::uint64_t generation = pool.generation();
    auto build_one = [&](std::size_t i) {
        const model::ClassFile& cf = *g.classes[i];
        g.has_native[i] = cf.has_native_method() ? 1 : 0;
        if (!cf.super_name.empty()) {
            const Id s = g.ids.find(cf.super_name);
            g.super_of[i] = s;
            if (s != kNoId) g.hierarchy[i].push_back(s);
        }
        for (const std::string& iface : cf.interfaces) {
            const Id s = g.ids.find(iface);
            if (s != kNoId) g.hierarchy[i].push_back(s);
        }
        const std::vector<std::string>& refs = cf.referenced_classes_cached(generation);
        g.refs[i].reserve(refs.size());
        for (const std::string& ref : refs) {
            const Id r = g.ids.find(ref);
            if (r != kNoId) g.refs[i].push_back(r);
        }
    };
    // Every item touches a distinct ClassFile (distinct cache), and the
    // interner is only read (const find) after the serial intern loop, so
    // the fan-out is race-free.
    if (threads) {
        threads->for_each_index(n, build_one);
    } else {
        for (std::size_t i = 0; i < n; ++i) build_one(i);
    }
    return g;
}

/// Rule 2 for the whole graph: special[i] is true when class i is special
/// or transitively extends/implements a special type.  Memoized iterative
/// DFS — each class and hierarchy edge is resolved once — with a cycle
/// guard: a class whose answer is still being computed (a cycle back-edge)
/// contributes "not special", so malformed cyclic input terminates instead
/// of overflowing the stack (the verifier rejects such pools, but the
/// analysis must not crash on them).
std::vector<std::uint8_t> compute_inherits_special(const ClassGraph& g) {
    const std::size_t n = g.classes.size();
    enum : std::uint8_t { kUnknown = 0, kVisiting, kFalse, kTrue };
    std::vector<std::uint8_t> state(n, kUnknown);
    std::vector<Id> stack;
    for (Id root = 0; root < n; ++root) {
        if (state[root] != kUnknown) continue;
        stack.push_back(root);
        while (!stack.empty()) {
            const Id v = stack.back();
            if (state[v] == kUnknown) {
                if (g.classes[v]->is_special) {
                    state[v] = kTrue;
                    stack.pop_back();
                    continue;
                }
                state[v] = kVisiting;
                for (Id child : g.hierarchy[v])
                    if (state[child] == kUnknown) stack.push_back(child);
            } else if (state[v] == kVisiting) {
                std::uint8_t verdict = kFalse;
                for (Id child : g.hierarchy[v])
                    if (state[child] == kTrue) verdict = kTrue;
                state[v] = verdict;
                stack.pop_back();
            } else {
                stack.pop_back();  // finished via another root / duplicate
            }
        }
    }
    for (std::size_t i = 0; i < n; ++i)
        if (state[i] == kTrue) state[i] = 1;
        else state[i] = 0;
    return state;
}

}  // namespace

Analysis analyze(const model::ClassPool& pool, support::ThreadPool* threads) {
    Analysis result;
    ClassGraph g = build_graph(pool, threads);
    const std::size_t n = g.classes.size();
    const std::vector<std::uint8_t> special = compute_inherits_special(g);

    // Seed rules 1 and 2 in id (= name) order, exactly like the original
    // string-keyed pass.
    std::vector<ClassStatus> status(n);
    std::vector<Id> worklist;
    worklist.reserve(n);
    for (Id i = 0; i < n; ++i) {
        if (g.has_native[i]) {
            status[i].verdict = Verdict::NonTransformable;
            status[i].reason = Reason::NativeMethod;
            worklist.push_back(i);
        } else if (special[i]) {
            status[i].verdict = Verdict::NonTransformable;
            status[i].reason = Reason::SpecialClass;
            worklist.push_back(i);
        }
    }

    // Rules 3 and 4: monotone FIFO worklist over the prebuilt edges.  Each
    // class is marked (and expanded) at most once and each edge scanned at
    // most once — O(V + E) — and the FIFO order matches the original
    // fixpoint, so blame assignment is bit-identical.
    auto mark = [&](Id victim, Reason reason, Id blame) {
        ClassStatus& st = status[victim];
        if (st.verdict == Verdict::NonTransformable) return;
        st.verdict = Verdict::NonTransformable;
        st.reason = reason;
        st.blamed_on = std::string(g.ids.name(blame));
        worklist.push_back(victim);
    };
    for (std::size_t head = 0; head < worklist.size(); ++head) {
        const Id x = worklist[head];
        // Rule 3: the superclass of a non-transformable class cannot be
        // transformed.
        if (g.super_of[x] != kNoId) mark(g.super_of[x], Reason::SuperOfNonTransformable, x);
        // Rule 4: everything a non-transformable class references must stay
        // in its original form.
        for (Id ref : g.refs[x]) mark(ref, Reason::ReferencedByNonTransformable, x);
    }

    // Publish under string keys and bake the aggregate counters.
    for (Id i = 0; i < n; ++i) {
        ClassStatus& st = status[i];
        if (st.verdict == Verdict::NonTransformable) {
            ++result.non_transformable_count_;
            ++result.reason_hist_[st.reason];
        }
        result.status_.emplace(g.classes[i]->name, std::move(st));
    }
    return result;
}

}  // namespace rafda::transform
