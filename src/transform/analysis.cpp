#include "transform/analysis.hpp"

#include <deque>

#include "support/error.hpp"

namespace rafda::transform {

std::string_view reason_name(Reason r) {
    switch (r) {
        case Reason::None: return "none";
        case Reason::NativeMethod: return "native-method";
        case Reason::SpecialClass: return "special-class";
        case Reason::SuperOfNonTransformable: return "super-of-non-transformable";
        case Reason::ReferencedByNonTransformable: return "referenced-by-non-transformable";
    }
    return "?";
}

const ClassStatus& Analysis::status_of(const std::string& cls) const {
    auto it = status_.find(cls);
    if (it == status_.end()) throw VerifyError("analysis has no class " + cls);
    return it->second;
}

bool Analysis::transformable(const std::string& cls) const {
    auto it = status_.find(cls);
    return it != status_.end() && it->second.verdict == Verdict::Transformable;
}

std::vector<std::string> Analysis::transformable_classes() const {
    std::vector<std::string> out;
    for (const auto& [name, st] : status_)
        if (st.verdict == Verdict::Transformable) out.push_back(name);
    return out;
}

std::vector<std::string> Analysis::non_transformable_classes() const {
    std::vector<std::string> out;
    for (const auto& [name, st] : status_)
        if (st.verdict == Verdict::NonTransformable) out.push_back(name);
    return out;
}

std::size_t Analysis::non_transformable_count() const {
    std::size_t n = 0;
    for (const auto& [_, st] : status_)
        if (st.verdict == Verdict::NonTransformable) ++n;
    return n;
}

double Analysis::non_transformable_fraction() const {
    if (status_.empty()) return 0.0;
    return static_cast<double>(non_transformable_count()) /
           static_cast<double>(status_.size());
}

std::map<Reason, std::size_t> Analysis::reason_histogram() const {
    std::map<Reason, std::size_t> hist;
    for (const auto& [_, st] : status_)
        if (st.verdict == Verdict::NonTransformable) ++hist[st.reason];
    return hist;
}

namespace {

/// True if cls is special or transitively extends/implements a special type.
bool inherits_special(const model::ClassPool& pool, const model::ClassFile& cls) {
    if (cls.is_special) return true;
    if (!cls.super_name.empty()) {
        if (const model::ClassFile* s = pool.find(cls.super_name))
            if (inherits_special(pool, *s)) return true;
    }
    for (const std::string& i : cls.interfaces)
        if (const model::ClassFile* icf = pool.find(i))
            if (inherits_special(pool, *icf)) return true;
    return false;
}

}  // namespace

Analysis analyze(const model::ClassPool& pool) {
    Analysis result;

    // Seed: rules 1 and 2.
    std::deque<std::string> worklist;
    for (const model::ClassFile* cf : pool.all()) {
        ClassStatus st;
        if (cf->has_native_method()) {
            st.verdict = Verdict::NonTransformable;
            st.reason = Reason::NativeMethod;
        } else if (inherits_special(pool, *cf)) {
            st.verdict = Verdict::NonTransformable;
            st.reason = Reason::SpecialClass;
        }
        if (st.verdict == Verdict::NonTransformable) worklist.push_back(cf->name);
        result.status_[cf->name] = st;
    }

    // Propagate rules 3 and 4 to a fixpoint.
    auto mark = [&](const std::string& victim, Reason reason, const std::string& blame) {
        ClassStatus& st = result.status_[victim];
        if (st.verdict == Verdict::NonTransformable) return;
        st.verdict = Verdict::NonTransformable;
        st.reason = reason;
        st.blamed_on = blame;
        worklist.push_back(victim);
    };

    while (!worklist.empty()) {
        std::string name = std::move(worklist.front());
        worklist.pop_front();
        const model::ClassFile& cf = pool.get(name);
        // Rule 3: the superclass of a non-transformable class cannot be
        // transformed.
        if (!cf.super_name.empty() && pool.contains(cf.super_name))
            mark(cf.super_name, Reason::SuperOfNonTransformable, name);
        // Rule 4: everything a non-transformable class references must stay
        // in its original form.
        for (const std::string& ref : cf.referenced_classes())
            if (pool.contains(ref)) mark(ref, Reason::ReferencedByNonTransformable, name);
    }

    return result;
}

}  // namespace rafda::transform
