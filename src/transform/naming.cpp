#include "transform/naming.hpp"

#include "support/strings.hpp"

namespace rafda::transform::naming {

std::string o_int(std::string_view cls) { return std::string(cls) + "_O_Int"; }
std::string o_local(std::string_view cls) { return std::string(cls) + "_O_Local"; }
std::string o_proxy(std::string_view cls, std::string_view protocol) {
    return std::string(cls) + "_O_Proxy_" + std::string(protocol);
}
std::string c_int(std::string_view cls) { return std::string(cls) + "_C_Int"; }
std::string c_local(std::string_view cls) { return std::string(cls) + "_C_Local"; }
std::string c_proxy(std::string_view cls, std::string_view protocol) {
    return std::string(cls) + "_C_Proxy_" + std::string(protocol);
}
std::string o_factory(std::string_view cls) { return std::string(cls) + "_O_Factory"; }
std::string c_factory(std::string_view cls) { return std::string(cls) + "_C_Factory"; }

std::string getter(std::string_view field) { return "get_" + std::string(field); }
std::string setter(std::string_view field) { return "set_" + std::string(field); }

std::string static_forwarder(std::string_view method) {
    return "call_" + std::string(method);
}

std::optional<ProxyName> parse_proxy(std::string_view name) {
    for (char family : {'O', 'C'}) {
        std::string marker = std::string("_") + family + "_Proxy_";
        std::size_t pos = name.find(marker);
        if (pos == std::string_view::npos || pos == 0) continue;
        std::string protocol(name.substr(pos + marker.size()));
        if (protocol.empty()) continue;
        return ProxyName{std::string(name.substr(0, pos)), family, std::move(protocol)};
    }
    return std::nullopt;
}

std::optional<std::string> local_to_interface(std::string_view name) {
    for (const char* suffix : {"_O_Local", "_C_Local"}) {
        if (ends_with(name, suffix) && name.size() > std::string_view(suffix).size()) {
            std::string base(name.substr(0, name.size() - 5));  // strip "Local"
            return base + "Int";
        }
    }
    return std::nullopt;
}

std::string interface_to_proxy(std::string_view iface, std::string_view protocol) {
    // "X_O_Int" -> "X_O_" + "Proxy_" + protocol
    std::string base(iface.substr(0, iface.size() - 3));  // strip "Int"
    return base + "Proxy_" + std::string(protocol);
}

std::optional<std::string> interface_to_original(std::string_view iface) {
    for (const char* suffix : {"_O_Int", "_C_Int"}) {
        if (ends_with(iface, suffix) && iface.size() > std::string_view(suffix).size())
            return std::string(iface.substr(0, iface.size() - 6));
    }
    return std::nullopt;
}

bool is_generated(std::string_view name) {
    return ends_with(name, "_O_Int") || ends_with(name, "_O_Local") ||
           ends_with(name, "_C_Int") || ends_with(name, "_C_Local") ||
           ends_with(name, "_O_Factory") || ends_with(name, "_C_Factory") ||
           name.find("_O_Proxy_") != std::string_view::npos ||
           name.find("_C_Proxy_") != std::string_view::npos;
}

}  // namespace rafda::transform::naming
