// Single-address-space binding of the factory natives.
//
// The paper's implementation status (Sec 4): "the creation of a local
// version of the transformed application that executes within a single
// address space — the first step in creating a fully distributed version."
// This binder is that step: every A_O_Factory.make() instantiates
// A_O_Local, every A_C_Factory.discover() returns the A_C_Local singleton
// (running A_C_Factory.clinit exactly once, before first use).
//
// The distributed runtime (runtime::Node) installs its own policy-driven
// binding instead; both go through the same factory seams, which is what
// makes remote and non-remote implementations interchangeable.
#pragma once

#include <string>
#include <vector>

#include "transform/pipeline.hpp"
#include "vm/interp.hpp"

namespace rafda::transform {

/// Binds make/discover of every substituted class to local implementations.
void bind_local_factories(vm::Interpreter& interp, const TransformReport& report);

/// Calls an original static entry point (e.g. Main.main) through the
/// transformed program: discovers the class singleton and invokes the
/// corresponding instance method with the mapped descriptor.
vm::Value call_transformed_static(vm::Interpreter& interp,
                                  const model::ClassPool& original_pool,
                                  const TransformReport& report, const std::string& cls,
                                  const std::string& method, const std::string& desc,
                                  std::vector<vm::Value> args = {});

}  // namespace rafda::transform
