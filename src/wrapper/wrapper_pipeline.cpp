#include "wrapper/wrapper_pipeline.hpp"

#include <algorithm>

#include "model/builder.hpp"
#include "model/verifier.hpp"
#include "support/error.hpp"

namespace rafda::wrapper {

using model::ClassBuilder;
using model::ClassFile;
using model::Code;
using model::CodeBuilder;
using model::Field;
using model::Instruction;
using model::Method;
using model::MethodSig;
using model::Op;
using model::TypeDesc;
using model::Visibility;

std::string wrapper_name(std::string_view cls) { return std::string(cls) + "_Wrapper"; }

bool WrapperReport::is_wrapped(const std::string& cls) const {
    return std::binary_search(wrapped.begin(), wrapped.end(), cls);
}

namespace {

constexpr const char* kTargetField = "target";
constexpr const char* kImplSuffix = "__impl";

std::string getter(const std::string& f) { return "get_" + f; }
std::string setter(const std::string& f) { return "set_" + f; }

/// Rewrites code so instance-member access goes through wrappers.  Unlike
/// the RAFDA rewriter, descriptors are left untouched: the VM is
/// dynamically typed and the wrapper approach has no interface layer to
/// retype against.
Code rewrite_for_wrappers(const model::ClassPool& pool,
                          const transform::Analysis& analysis, const Code& in) {
    auto wrappable = [&](const std::string& cls) {
        if (!analysis.transformable(cls)) return false;
        const ClassFile* cf = pool.find(cls);
        return cf && !cf->is_interface;
    };

    std::vector<Instruction> out;
    std::vector<int> new_pc(in.instrs.size() + 1, 0);
    for (std::size_t pc = 0; pc < in.instrs.size(); ++pc) {
        new_pc[pc] = static_cast<int>(out.size());
        const Instruction& i = in.instrs[pc];
        switch (i.op) {
            case Op::InvokeInterface:
                throw TransformError(
                    "wrapper approach does not support user-defined interfaces");
            case Op::NewArray: {
                model::TypeDesc base = model::TypeDesc::parse(i.desc);
                while (base.is_array()) base = base.element();
                if (base.is_ref() && wrappable(base.class_name()))
                    throw TransformError(
                        "wrapper approach does not support arrays of wrapped classes");
                out.push_back(i);
                break;
            }
            case Op::New:
                if (wrappable(i.owner)) {
                    out.push_back(model::ins::invoke_static(
                        wrapper_name(i.owner), "make",
                        MethodSig({}, TypeDesc::ref(wrapper_name(i.owner)))));
                } else {
                    out.push_back(i);
                }
                break;
            case Op::InvokeSpecial:
                if (wrappable(i.owner)) {
                    MethodSig orig = MethodSig::parse(i.desc);
                    std::vector<TypeDesc> params;
                    params.push_back(TypeDesc::ref(wrapper_name(i.owner)));
                    for (const TypeDesc& p : orig.params()) params.push_back(p);
                    out.push_back(model::ins::invoke_static(
                        wrapper_name(i.owner), "init",
                        MethodSig(std::move(params), TypeDesc::void_())));
                } else {
                    out.push_back(i);
                }
                break;
            case Op::GetField:
                if (wrappable(i.owner)) {
                    out.push_back(model::ins::invoke_virtual(
                        wrapper_name(i.owner), getter(i.member),
                        MethodSig({}, TypeDesc::parse(i.desc))));
                } else {
                    out.push_back(i);
                }
                break;
            case Op::PutField:
                if (wrappable(i.owner)) {
                    out.push_back(model::ins::invoke_virtual(
                        wrapper_name(i.owner), setter(i.member),
                        MethodSig({TypeDesc::parse(i.desc)}, TypeDesc::void_())));
                } else {
                    out.push_back(i);
                }
                break;
            case Op::InvokeVirtual:
                if (wrappable(i.owner)) {
                    out.push_back(model::ins::invoke_virtual(wrapper_name(i.owner),
                                                             i.member,
                                                             MethodSig::parse(i.desc)));
                } else {
                    out.push_back(i);
                }
                break;
            default:
                out.push_back(i);
                break;
        }
    }
    new_pc[in.instrs.size()] = static_cast<int>(out.size());

    Code result;
    result.instrs = std::move(out);
    for (Instruction& i : result.instrs)
        if (model::is_branch(i.op)) i.a = new_pc[static_cast<std::size_t>(i.a)];
    for (const model::Handler& h : in.handlers)
        result.handlers.push_back(model::Handler{new_pc[static_cast<std::size_t>(h.start)],
                                                 new_pc[static_cast<std::size_t>(h.end)],
                                                 new_pc[static_cast<std::size_t>(h.target)],
                                                 h.class_name});
    result.max_locals = in.max_locals;
    return result;
}

ClassFile make_wrapper(const model::ClassPool& pool, const transform::Analysis& analysis,
                       const ClassFile& cls) {
    const std::string w = wrapper_name(cls.name);
    const TypeDesc w_t = TypeDesc::ref(w);
    ClassBuilder b(w);

    // The target field is declared once, on the topmost wrapped ancestor's
    // wrapper, typed with that ancestor — subclass wrappers inherit it.
    std::string root = cls.name;
    while (true) {
        const ClassFile* cur = pool.find(root);
        if (!cur || cur->super_name.empty() || !analysis.transformable(cur->super_name))
            break;
        root = cur->super_name;
    }
    const TypeDesc target_t = TypeDesc::ref(root);

    // Inheritance: a wrapped subclass's wrapper extends the super's wrapper
    // so wrapper-typed references remain substitutable along the hierarchy.
    if (!cls.super_name.empty() && analysis.transformable(cls.super_name))
        b.extends(wrapper_name(cls.super_name));
    else
        b.field(kTargetField, target_t, Visibility::Public);

    {
        CodeBuilder ctor;
        ctor.ret();
        Method m;
        m.name = "<init>";
        m.sig = MethodSig({}, TypeDesc::void_());
        m.code = ctor.finish(1);
        b.method(std::move(m));
    }

    // make(): one wrapper + one raw target per logical instance — the
    // wrapper approach's per-object double allocation.
    {
        CodeBuilder make;
        make.new_(w)
            .dup()
            .invoke_special(w, "<init>", MethodSig({}, TypeDesc::void_()))
            .dup()
            .new_(cls.name)
            .dup()
            .invoke_special(cls.name, "<init>", MethodSig({}, TypeDesc::void_()))
            .put_field(w, kTargetField, target_t)
            .ret_value();
        b.static_method("make", MethodSig({}, w_t), std::move(make));
    }

    // init(...) per original constructor: rewritten body, slot 0 = wrapper.
    for (const Method& m : cls.methods) {
        if (!m.is_ctor()) continue;
        Method out;
        out.name = "init";
        std::vector<TypeDesc> params;
        params.push_back(w_t);
        for (const TypeDesc& p : m.sig.params()) params.push_back(p);
        out.sig = MethodSig(std::move(params), TypeDesc::void_());
        out.is_static = true;
        out.code = rewrite_for_wrappers(pool, analysis, m.code);
        b.method(std::move(out));
    }

    // Field interception: every access pays the extra hop through target.
    const std::string target_owner =
        w;  // field lookups walk the superclass chain at runtime
    for (const Field& f : cls.fields) {
        if (f.is_static) continue;
        CodeBuilder get;
        get.load(0)
            .get_field(target_owner, kTargetField, target_t)
            .get_field(cls.name, f.name, f.type)
            .ret_value();
        b.method(getter(f.name), MethodSig({}, f.type), std::move(get));
        CodeBuilder set;
        set.load(0)
            .get_field(target_owner, kTargetField, target_t)
            .load(1)
            .put_field(cls.name, f.name, f.type)
            .ret();
        b.method(setter(f.name), MethodSig({f.type}, TypeDesc::void_()), std::move(set));
    }

    // Method interception: public forwarder -> __impl with the logic.
    for (const Method& m : cls.methods) {
        if (m.is_static || m.is_ctor()) continue;
        Method impl;
        impl.name = m.name + kImplSuffix;
        impl.sig = m.sig;
        impl.code = rewrite_for_wrappers(pool, analysis, m.code);
        b.method(std::move(impl));

        CodeBuilder fwd;
        fwd.load(0);
        for (int p = 1; p <= static_cast<int>(m.sig.params().size()); ++p) fwd.load(p);
        fwd.invoke_virtual(w, m.name + kImplSuffix, m.sig);
        if (m.sig.ret().is_void()) fwd.ret();
        else fwd.ret_value();
        b.method(m.name, m.sig, std::move(fwd));
    }

    return b.build();
}

}  // namespace

WrapperResult run_wrapper_pipeline(const model::ClassPool& original, bool verify_output) {
    transform::Analysis analysis = transform::analyze(original);

    model::ClassPool out;
    std::vector<std::string> wrapped;

    for (const ClassFile* cf : original.all()) {
        if (!analysis.transformable(cf->name) || cf->is_interface) {
            out.add(*cf);
            continue;
        }
        // The class itself stays (it carries the state, the statics and the
        // original methods), but its static-side code is rewritten in place
        // so it sees wrappers, and a parameterless constructor is ensured
        // for make().
        ClassFile kept = *cf;
        for (Method& m : kept.methods) {
            if (m.is_static && !m.is_native && !m.is_abstract)
                m.code = rewrite_for_wrappers(original, analysis, m.code);
        }
        if (!kept.find_method("<init>", "()V")) {
            CodeBuilder ctor;
            ctor.ret();
            Method m;
            m.name = "<init>";
            m.sig = MethodSig({}, TypeDesc::void_());
            m.code = ctor.finish(1);
            kept.methods.push_back(std::move(m));
        }
        out.add(std::move(kept));
        out.add(make_wrapper(original, analysis, *cf));
        wrapped.push_back(cf->name);
    }

    if (verify_output) model::verify_pool(out);

    std::sort(wrapped.begin(), wrapped.end());
    return WrapperResult{std::move(out),
                         WrapperReport{std::move(analysis), std::move(wrapped)}};
}

}  // namespace rafda::wrapper
