// The wrapper-generation baseline (paper Sec 3, Related Work).
//
// "An alternative approach ... is to generate wrappers for every class.
// Wrappers act as proxies to local objects, by encapsulating an object and
// intercepting all access requests to that object.  There is a wrapper per
// instantiated object and all references to that object are altered to
// refer to the wrapper.  Although much simpler in terms of implementation,
// this introduces significantly greater overhead and does not offer
// solutions to any of the current limitations."
//
// This module implements that alternative so experiment E4 can measure the
// overhead claim.  For every wrappable class A it generates A_Wrapper:
//
//   field target LA;                  — the encapsulated object
//   static make()/init(...)          — allocate target + wrapper pair
//   get_f/set_f                      — intercept field access (extra hop
//                                      through `target`)
//   m(...) -> m__impl(...)           — intercept method calls (forwarding
//                                      call), m__impl holds the rewritten
//                                      original body
//
// and rewrites call sites so all references denote wrappers.  True to the
// quote, the limitations stay: statics remain ordinary statics (rewritten
// in place, not relocatable), user-defined interfaces are not supported,
// and there is no remote story — this is a measurement baseline.
#pragma once

#include <string>
#include <vector>

#include "model/classpool.hpp"
#include "transform/analysis.hpp"

namespace rafda::wrapper {

/// Naming used by the wrapper generator.
std::string wrapper_name(std::string_view cls);

struct WrapperReport {
    transform::Analysis analysis;
    std::vector<std::string> wrapped;  // classes that received wrappers

    bool is_wrapped(const std::string& cls) const;
};

struct WrapperResult {
    model::ClassPool pool;
    WrapperReport report;
};

/// Runs the wrapper pipeline on a verified pool.  Throws TransformError if
/// the program uses user-defined interfaces (a limitation the wrapper
/// approach does not solve).
WrapperResult run_wrapper_pipeline(const model::ClassPool& original,
                                   bool verify_output = true);

}  // namespace rafda::wrapper
