# Empty dependencies file for scale_and_fuzz_test.
# This may be replaced when dependencies are built.
