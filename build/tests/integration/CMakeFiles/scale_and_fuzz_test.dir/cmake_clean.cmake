file(REMOVE_RECURSE
  "CMakeFiles/scale_and_fuzz_test.dir/scale_and_fuzz_test.cpp.o"
  "CMakeFiles/scale_and_fuzz_test.dir/scale_and_fuzz_test.cpp.o.d"
  "scale_and_fuzz_test"
  "scale_and_fuzz_test.pdb"
  "scale_and_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scale_and_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
