# Empty compiler generated dependencies file for full_scenario_test.
# This may be replaced when dependencies are built.
