file(REMOVE_RECURSE
  "CMakeFiles/full_scenario_test.dir/full_scenario_test.cpp.o"
  "CMakeFiles/full_scenario_test.dir/full_scenario_test.cpp.o.d"
  "full_scenario_test"
  "full_scenario_test.pdb"
  "full_scenario_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/full_scenario_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
