# CMake generated Testfile for 
# Source directory: /root/repo/tests/transform
# Build directory: /root/repo/build/tests/transform
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/transform/naming_test[1]_include.cmake")
include("/root/repo/build/tests/transform/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/transform/rewriter_test[1]_include.cmake")
include("/root/repo/build/tests/transform/pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/transform/figures_golden_test[1]_include.cmake")
include("/root/repo/build/tests/transform/equivalence_test[1]_include.cmake")
include("/root/repo/build/tests/transform/partial_substitution_test[1]_include.cmake")
include("/root/repo/build/tests/transform/local_binder_test[1]_include.cmake")
