file(REMOVE_RECURSE
  "CMakeFiles/local_binder_test.dir/local_binder_test.cpp.o"
  "CMakeFiles/local_binder_test.dir/local_binder_test.cpp.o.d"
  "local_binder_test"
  "local_binder_test.pdb"
  "local_binder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/local_binder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
