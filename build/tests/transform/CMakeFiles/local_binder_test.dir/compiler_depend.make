# Empty compiler generated dependencies file for local_binder_test.
# This may be replaced when dependencies are built.
