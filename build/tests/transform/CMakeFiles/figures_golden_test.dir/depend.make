# Empty dependencies file for figures_golden_test.
# This may be replaced when dependencies are built.
