file(REMOVE_RECURSE
  "CMakeFiles/figures_golden_test.dir/figures_golden_test.cpp.o"
  "CMakeFiles/figures_golden_test.dir/figures_golden_test.cpp.o.d"
  "figures_golden_test"
  "figures_golden_test.pdb"
  "figures_golden_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figures_golden_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
