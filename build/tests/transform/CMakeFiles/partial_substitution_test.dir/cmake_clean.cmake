file(REMOVE_RECURSE
  "CMakeFiles/partial_substitution_test.dir/partial_substitution_test.cpp.o"
  "CMakeFiles/partial_substitution_test.dir/partial_substitution_test.cpp.o.d"
  "partial_substitution_test"
  "partial_substitution_test.pdb"
  "partial_substitution_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partial_substitution_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
