# Empty compiler generated dependencies file for partial_substitution_test.
# This may be replaced when dependencies are built.
