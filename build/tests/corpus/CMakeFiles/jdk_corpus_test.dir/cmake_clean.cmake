file(REMOVE_RECURSE
  "CMakeFiles/jdk_corpus_test.dir/jdk_corpus_test.cpp.o"
  "CMakeFiles/jdk_corpus_test.dir/jdk_corpus_test.cpp.o.d"
  "jdk_corpus_test"
  "jdk_corpus_test.pdb"
  "jdk_corpus_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jdk_corpus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
