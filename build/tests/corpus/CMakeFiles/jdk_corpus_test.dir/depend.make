# Empty dependencies file for jdk_corpus_test.
# This may be replaced when dependencies are built.
