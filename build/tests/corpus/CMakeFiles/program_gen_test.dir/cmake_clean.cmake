file(REMOVE_RECURSE
  "CMakeFiles/program_gen_test.dir/program_gen_test.cpp.o"
  "CMakeFiles/program_gen_test.dir/program_gen_test.cpp.o.d"
  "program_gen_test"
  "program_gen_test.pdb"
  "program_gen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/program_gen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
