# Empty dependencies file for closure_migration_test.
# This may be replaced when dependencies are built.
