file(REMOVE_RECURSE
  "CMakeFiles/closure_migration_test.dir/closure_migration_test.cpp.o"
  "CMakeFiles/closure_migration_test.dir/closure_migration_test.cpp.o.d"
  "closure_migration_test"
  "closure_migration_test.pdb"
  "closure_migration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/closure_migration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
