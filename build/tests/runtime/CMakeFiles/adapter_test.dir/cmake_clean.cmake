file(REMOVE_RECURSE
  "CMakeFiles/adapter_test.dir/adapter_test.cpp.o"
  "CMakeFiles/adapter_test.dir/adapter_test.cpp.o.d"
  "adapter_test"
  "adapter_test.pdb"
  "adapter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adapter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
