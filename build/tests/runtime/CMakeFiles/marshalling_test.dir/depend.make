# Empty dependencies file for marshalling_test.
# This may be replaced when dependencies are built.
