file(REMOVE_RECURSE
  "CMakeFiles/marshalling_test.dir/marshalling_test.cpp.o"
  "CMakeFiles/marshalling_test.dir/marshalling_test.cpp.o.d"
  "marshalling_test"
  "marshalling_test.pdb"
  "marshalling_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/marshalling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
