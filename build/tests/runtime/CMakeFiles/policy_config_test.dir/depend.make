# Empty dependencies file for policy_config_test.
# This may be replaced when dependencies are built.
