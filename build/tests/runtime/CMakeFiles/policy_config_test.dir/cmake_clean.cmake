file(REMOVE_RECURSE
  "CMakeFiles/policy_config_test.dir/policy_config_test.cpp.o"
  "CMakeFiles/policy_config_test.dir/policy_config_test.cpp.o.d"
  "policy_config_test"
  "policy_config_test.pdb"
  "policy_config_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_config_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
