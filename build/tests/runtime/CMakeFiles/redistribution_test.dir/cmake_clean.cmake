file(REMOVE_RECURSE
  "CMakeFiles/redistribution_test.dir/redistribution_test.cpp.o"
  "CMakeFiles/redistribution_test.dir/redistribution_test.cpp.o.d"
  "redistribution_test"
  "redistribution_test.pdb"
  "redistribution_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redistribution_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
