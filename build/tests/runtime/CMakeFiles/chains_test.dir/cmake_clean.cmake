file(REMOVE_RECURSE
  "CMakeFiles/chains_test.dir/chains_test.cpp.o"
  "CMakeFiles/chains_test.dir/chains_test.cpp.o.d"
  "chains_test"
  "chains_test.pdb"
  "chains_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chains_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
