# CMake generated Testfile for 
# Source directory: /root/repo/tests/runtime
# Build directory: /root/repo/build/tests/runtime
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/runtime/system_test[1]_include.cmake")
include("/root/repo/build/tests/runtime/redistribution_test[1]_include.cmake")
include("/root/repo/build/tests/runtime/faults_test[1]_include.cmake")
include("/root/repo/build/tests/runtime/policy_config_test[1]_include.cmake")
include("/root/repo/build/tests/runtime/chains_test[1]_include.cmake")
include("/root/repo/build/tests/runtime/adapter_test[1]_include.cmake")
include("/root/repo/build/tests/runtime/closure_migration_test[1]_include.cmake")
include("/root/repo/build/tests/runtime/marshalling_test[1]_include.cmake")
include("/root/repo/build/tests/runtime/advisor_test[1]_include.cmake")
