file(REMOVE_RECURSE
  "CMakeFiles/classfile_test.dir/classfile_test.cpp.o"
  "CMakeFiles/classfile_test.dir/classfile_test.cpp.o.d"
  "classfile_test"
  "classfile_test.pdb"
  "classfile_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/classfile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
