# Empty compiler generated dependencies file for classpool_test.
# This may be replaced when dependencies are built.
