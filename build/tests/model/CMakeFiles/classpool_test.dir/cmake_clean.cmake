file(REMOVE_RECURSE
  "CMakeFiles/classpool_test.dir/classpool_test.cpp.o"
  "CMakeFiles/classpool_test.dir/classpool_test.cpp.o.d"
  "classpool_test"
  "classpool_test.pdb"
  "classpool_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/classpool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
