file(REMOVE_RECURSE
  "CMakeFiles/binio_test.dir/binio_test.cpp.o"
  "CMakeFiles/binio_test.dir/binio_test.cpp.o.d"
  "binio_test"
  "binio_test.pdb"
  "binio_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/binio_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
