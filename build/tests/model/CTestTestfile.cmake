# CMake generated Testfile for 
# Source directory: /root/repo/tests/model
# Build directory: /root/repo/build/tests/model
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/model/type_test[1]_include.cmake")
include("/root/repo/build/tests/model/assembler_test[1]_include.cmake")
include("/root/repo/build/tests/model/classpool_test[1]_include.cmake")
include("/root/repo/build/tests/model/builder_test[1]_include.cmake")
include("/root/repo/build/tests/model/verifier_test[1]_include.cmake")
include("/root/repo/build/tests/model/printer_test[1]_include.cmake")
include("/root/repo/build/tests/model/binio_test[1]_include.cmake")
include("/root/repo/build/tests/model/classfile_test[1]_include.cmake")
