# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("model")
subdirs("vm")
subdirs("transform")
subdirs("net")
subdirs("runtime")
subdirs("wrapper")
subdirs("corpus")
subdirs("integration")
subdirs("tools")
