# Empty dependencies file for rafdac_test.
# This may be replaced when dependencies are built.
