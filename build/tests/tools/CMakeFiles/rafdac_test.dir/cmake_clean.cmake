file(REMOVE_RECURSE
  "CMakeFiles/rafdac_test.dir/rafdac_test.cpp.o"
  "CMakeFiles/rafdac_test.dir/rafdac_test.cpp.o.d"
  "rafdac_test"
  "rafdac_test.pdb"
  "rafdac_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rafdac_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
