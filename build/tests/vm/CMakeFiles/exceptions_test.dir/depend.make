# Empty dependencies file for exceptions_test.
# This may be replaced when dependencies are built.
