# Empty compiler generated dependencies file for arrays_test.
# This may be replaced when dependencies are built.
