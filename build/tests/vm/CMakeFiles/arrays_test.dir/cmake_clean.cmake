file(REMOVE_RECURSE
  "CMakeFiles/arrays_test.dir/arrays_test.cpp.o"
  "CMakeFiles/arrays_test.dir/arrays_test.cpp.o.d"
  "arrays_test"
  "arrays_test.pdb"
  "arrays_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arrays_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
