file(REMOVE_RECURSE
  "CMakeFiles/rafda_vm.dir/heap.cpp.o"
  "CMakeFiles/rafda_vm.dir/heap.cpp.o.d"
  "CMakeFiles/rafda_vm.dir/interp.cpp.o"
  "CMakeFiles/rafda_vm.dir/interp.cpp.o.d"
  "CMakeFiles/rafda_vm.dir/prelude.cpp.o"
  "CMakeFiles/rafda_vm.dir/prelude.cpp.o.d"
  "CMakeFiles/rafda_vm.dir/value.cpp.o"
  "CMakeFiles/rafda_vm.dir/value.cpp.o.d"
  "librafda_vm.a"
  "librafda_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rafda_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
