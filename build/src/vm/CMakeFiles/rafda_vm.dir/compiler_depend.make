# Empty compiler generated dependencies file for rafda_vm.
# This may be replaced when dependencies are built.
