
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vm/heap.cpp" "src/vm/CMakeFiles/rafda_vm.dir/heap.cpp.o" "gcc" "src/vm/CMakeFiles/rafda_vm.dir/heap.cpp.o.d"
  "/root/repo/src/vm/interp.cpp" "src/vm/CMakeFiles/rafda_vm.dir/interp.cpp.o" "gcc" "src/vm/CMakeFiles/rafda_vm.dir/interp.cpp.o.d"
  "/root/repo/src/vm/prelude.cpp" "src/vm/CMakeFiles/rafda_vm.dir/prelude.cpp.o" "gcc" "src/vm/CMakeFiles/rafda_vm.dir/prelude.cpp.o.d"
  "/root/repo/src/vm/value.cpp" "src/vm/CMakeFiles/rafda_vm.dir/value.cpp.o" "gcc" "src/vm/CMakeFiles/rafda_vm.dir/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/rafda_model.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/rafda_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
