file(REMOVE_RECURSE
  "librafda_vm.a"
)
