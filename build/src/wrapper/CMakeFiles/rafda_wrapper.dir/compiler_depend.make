# Empty compiler generated dependencies file for rafda_wrapper.
# This may be replaced when dependencies are built.
