file(REMOVE_RECURSE
  "CMakeFiles/rafda_wrapper.dir/wrapper_pipeline.cpp.o"
  "CMakeFiles/rafda_wrapper.dir/wrapper_pipeline.cpp.o.d"
  "librafda_wrapper.a"
  "librafda_wrapper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rafda_wrapper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
