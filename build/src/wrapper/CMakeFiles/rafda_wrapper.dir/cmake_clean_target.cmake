file(REMOVE_RECURSE
  "librafda_wrapper.a"
)
