file(REMOVE_RECURSE
  "CMakeFiles/rafda_corpus.dir/jdk_corpus.cpp.o"
  "CMakeFiles/rafda_corpus.dir/jdk_corpus.cpp.o.d"
  "CMakeFiles/rafda_corpus.dir/program_gen.cpp.o"
  "CMakeFiles/rafda_corpus.dir/program_gen.cpp.o.d"
  "librafda_corpus.a"
  "librafda_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rafda_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
