# Empty dependencies file for rafda_corpus.
# This may be replaced when dependencies are built.
