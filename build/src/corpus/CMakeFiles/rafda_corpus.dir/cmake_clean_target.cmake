file(REMOVE_RECURSE
  "librafda_corpus.a"
)
