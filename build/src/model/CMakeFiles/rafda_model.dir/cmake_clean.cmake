file(REMOVE_RECURSE
  "CMakeFiles/rafda_model.dir/assembler.cpp.o"
  "CMakeFiles/rafda_model.dir/assembler.cpp.o.d"
  "CMakeFiles/rafda_model.dir/binio.cpp.o"
  "CMakeFiles/rafda_model.dir/binio.cpp.o.d"
  "CMakeFiles/rafda_model.dir/builder.cpp.o"
  "CMakeFiles/rafda_model.dir/builder.cpp.o.d"
  "CMakeFiles/rafda_model.dir/classfile.cpp.o"
  "CMakeFiles/rafda_model.dir/classfile.cpp.o.d"
  "CMakeFiles/rafda_model.dir/classpool.cpp.o"
  "CMakeFiles/rafda_model.dir/classpool.cpp.o.d"
  "CMakeFiles/rafda_model.dir/instr.cpp.o"
  "CMakeFiles/rafda_model.dir/instr.cpp.o.d"
  "CMakeFiles/rafda_model.dir/printer.cpp.o"
  "CMakeFiles/rafda_model.dir/printer.cpp.o.d"
  "CMakeFiles/rafda_model.dir/type.cpp.o"
  "CMakeFiles/rafda_model.dir/type.cpp.o.d"
  "CMakeFiles/rafda_model.dir/verifier.cpp.o"
  "CMakeFiles/rafda_model.dir/verifier.cpp.o.d"
  "librafda_model.a"
  "librafda_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rafda_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
