
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/assembler.cpp" "src/model/CMakeFiles/rafda_model.dir/assembler.cpp.o" "gcc" "src/model/CMakeFiles/rafda_model.dir/assembler.cpp.o.d"
  "/root/repo/src/model/binio.cpp" "src/model/CMakeFiles/rafda_model.dir/binio.cpp.o" "gcc" "src/model/CMakeFiles/rafda_model.dir/binio.cpp.o.d"
  "/root/repo/src/model/builder.cpp" "src/model/CMakeFiles/rafda_model.dir/builder.cpp.o" "gcc" "src/model/CMakeFiles/rafda_model.dir/builder.cpp.o.d"
  "/root/repo/src/model/classfile.cpp" "src/model/CMakeFiles/rafda_model.dir/classfile.cpp.o" "gcc" "src/model/CMakeFiles/rafda_model.dir/classfile.cpp.o.d"
  "/root/repo/src/model/classpool.cpp" "src/model/CMakeFiles/rafda_model.dir/classpool.cpp.o" "gcc" "src/model/CMakeFiles/rafda_model.dir/classpool.cpp.o.d"
  "/root/repo/src/model/instr.cpp" "src/model/CMakeFiles/rafda_model.dir/instr.cpp.o" "gcc" "src/model/CMakeFiles/rafda_model.dir/instr.cpp.o.d"
  "/root/repo/src/model/printer.cpp" "src/model/CMakeFiles/rafda_model.dir/printer.cpp.o" "gcc" "src/model/CMakeFiles/rafda_model.dir/printer.cpp.o.d"
  "/root/repo/src/model/type.cpp" "src/model/CMakeFiles/rafda_model.dir/type.cpp.o" "gcc" "src/model/CMakeFiles/rafda_model.dir/type.cpp.o.d"
  "/root/repo/src/model/verifier.cpp" "src/model/CMakeFiles/rafda_model.dir/verifier.cpp.o" "gcc" "src/model/CMakeFiles/rafda_model.dir/verifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/rafda_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
