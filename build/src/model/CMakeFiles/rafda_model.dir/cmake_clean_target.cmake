file(REMOVE_RECURSE
  "librafda_model.a"
)
