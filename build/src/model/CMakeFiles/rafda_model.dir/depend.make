# Empty dependencies file for rafda_model.
# This may be replaced when dependencies are built.
