file(REMOVE_RECURSE
  "librafda_net.a"
)
