# Empty dependencies file for rafda_net.
# This may be replaced when dependencies are built.
