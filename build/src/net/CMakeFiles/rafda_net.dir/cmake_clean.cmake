file(REMOVE_RECURSE
  "CMakeFiles/rafda_net.dir/codec.cpp.o"
  "CMakeFiles/rafda_net.dir/codec.cpp.o.d"
  "CMakeFiles/rafda_net.dir/corbx.cpp.o"
  "CMakeFiles/rafda_net.dir/corbx.cpp.o.d"
  "CMakeFiles/rafda_net.dir/message.cpp.o"
  "CMakeFiles/rafda_net.dir/message.cpp.o.d"
  "CMakeFiles/rafda_net.dir/network.cpp.o"
  "CMakeFiles/rafda_net.dir/network.cpp.o.d"
  "CMakeFiles/rafda_net.dir/rmib.cpp.o"
  "CMakeFiles/rafda_net.dir/rmib.cpp.o.d"
  "CMakeFiles/rafda_net.dir/soapx.cpp.o"
  "CMakeFiles/rafda_net.dir/soapx.cpp.o.d"
  "librafda_net.a"
  "librafda_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rafda_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
