file(REMOVE_RECURSE
  "CMakeFiles/rafda_runtime.dir/adapter.cpp.o"
  "CMakeFiles/rafda_runtime.dir/adapter.cpp.o.d"
  "CMakeFiles/rafda_runtime.dir/advisor.cpp.o"
  "CMakeFiles/rafda_runtime.dir/advisor.cpp.o.d"
  "CMakeFiles/rafda_runtime.dir/node.cpp.o"
  "CMakeFiles/rafda_runtime.dir/node.cpp.o.d"
  "CMakeFiles/rafda_runtime.dir/policy.cpp.o"
  "CMakeFiles/rafda_runtime.dir/policy.cpp.o.d"
  "CMakeFiles/rafda_runtime.dir/policy_config.cpp.o"
  "CMakeFiles/rafda_runtime.dir/policy_config.cpp.o.d"
  "CMakeFiles/rafda_runtime.dir/system.cpp.o"
  "CMakeFiles/rafda_runtime.dir/system.cpp.o.d"
  "librafda_runtime.a"
  "librafda_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rafda_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
