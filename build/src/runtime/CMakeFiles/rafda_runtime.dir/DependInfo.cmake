
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/adapter.cpp" "src/runtime/CMakeFiles/rafda_runtime.dir/adapter.cpp.o" "gcc" "src/runtime/CMakeFiles/rafda_runtime.dir/adapter.cpp.o.d"
  "/root/repo/src/runtime/advisor.cpp" "src/runtime/CMakeFiles/rafda_runtime.dir/advisor.cpp.o" "gcc" "src/runtime/CMakeFiles/rafda_runtime.dir/advisor.cpp.o.d"
  "/root/repo/src/runtime/node.cpp" "src/runtime/CMakeFiles/rafda_runtime.dir/node.cpp.o" "gcc" "src/runtime/CMakeFiles/rafda_runtime.dir/node.cpp.o.d"
  "/root/repo/src/runtime/policy.cpp" "src/runtime/CMakeFiles/rafda_runtime.dir/policy.cpp.o" "gcc" "src/runtime/CMakeFiles/rafda_runtime.dir/policy.cpp.o.d"
  "/root/repo/src/runtime/policy_config.cpp" "src/runtime/CMakeFiles/rafda_runtime.dir/policy_config.cpp.o" "gcc" "src/runtime/CMakeFiles/rafda_runtime.dir/policy_config.cpp.o.d"
  "/root/repo/src/runtime/system.cpp" "src/runtime/CMakeFiles/rafda_runtime.dir/system.cpp.o" "gcc" "src/runtime/CMakeFiles/rafda_runtime.dir/system.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/transform/CMakeFiles/rafda_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/rafda_net.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/rafda_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/rafda_model.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/rafda_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
