file(REMOVE_RECURSE
  "librafda_runtime.a"
)
