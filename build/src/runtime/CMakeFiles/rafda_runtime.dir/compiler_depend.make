# Empty compiler generated dependencies file for rafda_runtime.
# This may be replaced when dependencies are built.
