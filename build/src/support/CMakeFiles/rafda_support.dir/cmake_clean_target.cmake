file(REMOVE_RECURSE
  "librafda_support.a"
)
