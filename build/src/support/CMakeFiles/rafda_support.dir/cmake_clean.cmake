file(REMOVE_RECURSE
  "CMakeFiles/rafda_support.dir/bytes.cpp.o"
  "CMakeFiles/rafda_support.dir/bytes.cpp.o.d"
  "CMakeFiles/rafda_support.dir/error.cpp.o"
  "CMakeFiles/rafda_support.dir/error.cpp.o.d"
  "CMakeFiles/rafda_support.dir/log.cpp.o"
  "CMakeFiles/rafda_support.dir/log.cpp.o.d"
  "CMakeFiles/rafda_support.dir/rng.cpp.o"
  "CMakeFiles/rafda_support.dir/rng.cpp.o.d"
  "CMakeFiles/rafda_support.dir/strings.cpp.o"
  "CMakeFiles/rafda_support.dir/strings.cpp.o.d"
  "librafda_support.a"
  "librafda_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rafda_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
