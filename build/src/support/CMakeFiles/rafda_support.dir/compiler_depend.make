# Empty compiler generated dependencies file for rafda_support.
# This may be replaced when dependencies are built.
