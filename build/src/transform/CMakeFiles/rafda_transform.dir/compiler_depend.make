# Empty compiler generated dependencies file for rafda_transform.
# This may be replaced when dependencies are built.
