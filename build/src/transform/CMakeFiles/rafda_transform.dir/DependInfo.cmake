
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transform/analysis.cpp" "src/transform/CMakeFiles/rafda_transform.dir/analysis.cpp.o" "gcc" "src/transform/CMakeFiles/rafda_transform.dir/analysis.cpp.o.d"
  "/root/repo/src/transform/generator.cpp" "src/transform/CMakeFiles/rafda_transform.dir/generator.cpp.o" "gcc" "src/transform/CMakeFiles/rafda_transform.dir/generator.cpp.o.d"
  "/root/repo/src/transform/local_binder.cpp" "src/transform/CMakeFiles/rafda_transform.dir/local_binder.cpp.o" "gcc" "src/transform/CMakeFiles/rafda_transform.dir/local_binder.cpp.o.d"
  "/root/repo/src/transform/naming.cpp" "src/transform/CMakeFiles/rafda_transform.dir/naming.cpp.o" "gcc" "src/transform/CMakeFiles/rafda_transform.dir/naming.cpp.o.d"
  "/root/repo/src/transform/pipeline.cpp" "src/transform/CMakeFiles/rafda_transform.dir/pipeline.cpp.o" "gcc" "src/transform/CMakeFiles/rafda_transform.dir/pipeline.cpp.o.d"
  "/root/repo/src/transform/rewriter.cpp" "src/transform/CMakeFiles/rafda_transform.dir/rewriter.cpp.o" "gcc" "src/transform/CMakeFiles/rafda_transform.dir/rewriter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/rafda_model.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/rafda_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/rafda_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
