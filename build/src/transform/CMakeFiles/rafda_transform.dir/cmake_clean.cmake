file(REMOVE_RECURSE
  "CMakeFiles/rafda_transform.dir/analysis.cpp.o"
  "CMakeFiles/rafda_transform.dir/analysis.cpp.o.d"
  "CMakeFiles/rafda_transform.dir/generator.cpp.o"
  "CMakeFiles/rafda_transform.dir/generator.cpp.o.d"
  "CMakeFiles/rafda_transform.dir/local_binder.cpp.o"
  "CMakeFiles/rafda_transform.dir/local_binder.cpp.o.d"
  "CMakeFiles/rafda_transform.dir/naming.cpp.o"
  "CMakeFiles/rafda_transform.dir/naming.cpp.o.d"
  "CMakeFiles/rafda_transform.dir/pipeline.cpp.o"
  "CMakeFiles/rafda_transform.dir/pipeline.cpp.o.d"
  "CMakeFiles/rafda_transform.dir/rewriter.cpp.o"
  "CMakeFiles/rafda_transform.dir/rewriter.cpp.o.d"
  "librafda_transform.a"
  "librafda_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rafda_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
