file(REMOVE_RECURSE
  "librafda_transform.a"
)
