file(REMOVE_RECURSE
  "CMakeFiles/transform_inspect.dir/transform_inspect.cpp.o"
  "CMakeFiles/transform_inspect.dir/transform_inspect.cpp.o.d"
  "transform_inspect"
  "transform_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transform_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
