# Empty dependencies file for transform_inspect.
# This may be replaced when dependencies are built.
