file(REMOVE_RECURSE
  "CMakeFiles/policy_deployment.dir/policy_deployment.cpp.o"
  "CMakeFiles/policy_deployment.dir/policy_deployment.cpp.o.d"
  "policy_deployment"
  "policy_deployment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
