# Empty dependencies file for policy_deployment.
# This may be replaced when dependencies are built.
