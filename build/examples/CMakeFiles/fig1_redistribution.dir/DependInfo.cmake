
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/fig1_redistribution.cpp" "examples/CMakeFiles/fig1_redistribution.dir/fig1_redistribution.cpp.o" "gcc" "examples/CMakeFiles/fig1_redistribution.dir/fig1_redistribution.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/rafda_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/transform/CMakeFiles/rafda_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/rafda_net.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/rafda_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/rafda_model.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/rafda_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
