# Empty compiler generated dependencies file for fig1_redistribution.
# This may be replaced when dependencies are built.
