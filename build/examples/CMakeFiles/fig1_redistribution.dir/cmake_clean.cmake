file(REMOVE_RECURSE
  "CMakeFiles/fig1_redistribution.dir/fig1_redistribution.cpp.o"
  "CMakeFiles/fig1_redistribution.dir/fig1_redistribution.cpp.o.d"
  "fig1_redistribution"
  "fig1_redistribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_redistribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
