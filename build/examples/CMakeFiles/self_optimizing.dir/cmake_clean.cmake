file(REMOVE_RECURSE
  "CMakeFiles/self_optimizing.dir/self_optimizing.cpp.o"
  "CMakeFiles/self_optimizing.dir/self_optimizing.cpp.o.d"
  "self_optimizing"
  "self_optimizing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/self_optimizing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
