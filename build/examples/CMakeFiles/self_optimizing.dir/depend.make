# Empty dependencies file for self_optimizing.
# This may be replaced when dependencies are built.
