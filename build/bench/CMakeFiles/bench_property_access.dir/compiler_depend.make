# Empty compiler generated dependencies file for bench_property_access.
# This may be replaced when dependencies are built.
