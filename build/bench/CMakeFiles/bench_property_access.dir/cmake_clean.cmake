file(REMOVE_RECURSE
  "CMakeFiles/bench_property_access.dir/bench_property_access.cpp.o"
  "CMakeFiles/bench_property_access.dir/bench_property_access.cpp.o.d"
  "bench_property_access"
  "bench_property_access.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_property_access.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
