file(REMOVE_RECURSE
  "CMakeFiles/bench_transformability.dir/bench_transformability.cpp.o"
  "CMakeFiles/bench_transformability.dir/bench_transformability.cpp.o.d"
  "bench_transformability"
  "bench_transformability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_transformability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
