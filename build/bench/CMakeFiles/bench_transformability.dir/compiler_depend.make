# Empty compiler generated dependencies file for bench_transformability.
# This may be replaced when dependencies are built.
