file(REMOVE_RECURSE
  "CMakeFiles/bench_dispatch_matrix.dir/bench_dispatch_matrix.cpp.o"
  "CMakeFiles/bench_dispatch_matrix.dir/bench_dispatch_matrix.cpp.o.d"
  "bench_dispatch_matrix"
  "bench_dispatch_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dispatch_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
