file(REMOVE_RECURSE
  "CMakeFiles/bench_factory_overhead.dir/bench_factory_overhead.cpp.o"
  "CMakeFiles/bench_factory_overhead.dir/bench_factory_overhead.cpp.o.d"
  "bench_factory_overhead"
  "bench_factory_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_factory_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
