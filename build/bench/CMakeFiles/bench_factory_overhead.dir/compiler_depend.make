# Empty compiler generated dependencies file for bench_factory_overhead.
# This may be replaced when dependencies are built.
