file(REMOVE_RECURSE
  "CMakeFiles/bench_wrapper_vs_transform.dir/bench_wrapper_vs_transform.cpp.o"
  "CMakeFiles/bench_wrapper_vs_transform.dir/bench_wrapper_vs_transform.cpp.o.d"
  "bench_wrapper_vs_transform"
  "bench_wrapper_vs_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_wrapper_vs_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
