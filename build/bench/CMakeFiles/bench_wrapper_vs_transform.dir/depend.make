# Empty dependencies file for bench_wrapper_vs_transform.
# This may be replaced when dependencies are built.
