file(REMOVE_RECURSE
  "CMakeFiles/rafdac.dir/rafdac.cpp.o"
  "CMakeFiles/rafdac.dir/rafdac.cpp.o.d"
  "rafdac"
  "rafdac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rafdac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
