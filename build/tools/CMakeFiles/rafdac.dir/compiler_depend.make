# Empty compiler generated dependencies file for rafdac.
# This may be replaced when dependencies are built.
